//! Linear forwarding tables (LFTs) and path tracing.
//!
//! InfiniBand subnet managers program each switch with a destination-indexed
//! *linear forwarding table*. [`RoutingTable`] mirrors that: one `u32` entry
//! per `(switch, destination host)` pair selecting an egress port. Routing
//! algorithms (D-Mod-K and the baselines in `ftree-core`) only *fill* these
//! tables; tracing and contention analysis read them.
//!
//! Hosts with a single up-going cable (every RLFT host) need no table; for
//! general PGFTs with multi-cabled hosts an optional per-host table selects
//! the first hop.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::{ChannelId, NodeId, PortRef, Topology};

/// Encoded LFT entry: high bit set = up-going port, clear = down-going port,
/// `u32::MAX` = no route (local delivery or unreachable).
const NONE: u32 = u32::MAX;
const UP_BIT: u32 = 1 << 31;

#[inline]
fn encode(port: PortRef) -> u32 {
    match port {
        PortRef::Up(q) => q | UP_BIT,
        PortRef::Down(r) => r,
    }
}

#[inline]
fn decode(e: u32) -> Option<PortRef> {
    if e == NONE {
        None
    } else if e & UP_BIT != 0 {
        Some(PortRef::Up(e & !UP_BIT))
    } else {
        Some(PortRef::Down(e))
    }
}

/// Why a path could not be traced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// A node on the way had no LFT entry for the destination.
    NoRoute {
        /// Node missing the entry.
        at: NodeId,
        /// Destination host.
        dst: usize,
    },
    /// The path exceeded the maximum hop budget (routing loop).
    Loop {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// The path went up after going down — invalid in up/down routing and a
    /// deadlock hazard (paper relies on pure up*/down* paths).
    NotUpDown {
        /// Source host.
        src: usize,
        /// Destination host.
        dst: usize,
    },
    /// The routing inputs were inconsistent with the topology (e.g. a
    /// failure set built for a different fabric). Routing engines surface
    /// these as errors instead of panicking.
    Topology(TopologyError),
}

impl From<TopologyError> for RouteError {
    fn from(e: TopologyError) -> Self {
        Self::Topology(e)
    }
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoRoute { at, dst } => write!(f, "no route at node {at:?} toward host {dst}"),
            Self::Loop { src, dst } => write!(f, "routing loop between hosts {src} and {dst}"),
            Self::NotUpDown { src, dst } => {
                write!(f, "path {src} -> {dst} violates up*/down* ordering")
            }
            Self::Topology(e) => write!(f, "inconsistent routing inputs: {e}"),
        }
    }
}

impl std::error::Error for RouteError {}

/// A traced source→destination path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    /// Directed channels traversed, in order. Empty iff `src == dst`.
    pub channels: Vec<ChannelId>,
    /// Nodes visited, starting with the source host and ending with the
    /// destination host (`channels.len() + 1` entries; a single entry iff
    /// `src == dst`).
    pub nodes: Vec<NodeId>,
}

impl Path {
    /// Number of hops (channels traversed).
    #[inline]
    pub fn len(&self) -> usize {
        self.channels.len()
    }

    /// True for the degenerate self-path.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.channels.is_empty()
    }

    /// The highest tree level the path reaches (0 for the self-path).
    pub fn apex_level(&self, topo: &Topology) -> usize {
        self.nodes
            .iter()
            .map(|&n| topo.node(n).level as usize)
            .max()
            .unwrap_or(0)
    }
}

/// Destination-indexed forwarding tables for every switch (and, when needed,
/// every host) of one topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingTable {
    num_hosts: u32,
    /// `switch_lft[switch_ordinal][dst]`, switch ordinal = node id − hosts.
    switch_lft: Vec<Vec<u32>>,
    /// Optional per-host first-hop tables (multi-cabled PGFT hosts only).
    host_lft: Option<Vec<Vec<u32>>>,
    /// A short label describing the algorithm that filled the table.
    pub algorithm: String,
}

impl RoutingTable {
    /// Creates an empty (all `NoRoute`) table set for `topo`.
    pub fn empty(topo: &Topology, algorithm: impl Into<String>) -> Self {
        let hosts = topo.num_hosts();
        let switches = topo.num_nodes() - hosts;
        let host_multi = topo.spec().up_ports(0) > 1;
        Self {
            num_hosts: hosts as u32,
            switch_lft: vec![vec![NONE; hosts]; switches],
            host_lft: if host_multi {
                Some(vec![vec![NONE; hosts]; hosts])
            } else {
                None
            },
            algorithm: algorithm.into(),
        }
    }

    #[inline]
    fn switch_ordinal(&self, node: NodeId) -> usize {
        debug_assert!(node.0 >= self.num_hosts, "not a switch: {node:?}");
        (node.0 - self.num_hosts) as usize
    }

    /// Sets the egress port used by `node` toward destination host `dst`.
    pub fn set(&mut self, node: NodeId, dst: usize, port: PortRef) {
        if node.0 < self.num_hosts {
            let table = self
                .host_lft
                .as_mut()
                .expect("host LFTs only exist for multi-cabled hosts");
            table[node.index()][dst] = encode(port);
        } else {
            let ord = self.switch_ordinal(node);
            self.switch_lft[ord][dst] = encode(port);
        }
    }

    /// Clears the entry for `(node, dst)` back to `NoRoute`. Used by
    /// incremental repair when no viable egress remains after a failure.
    pub fn clear(&mut self, node: NodeId, dst: usize) {
        if node.0 < self.num_hosts {
            if let Some(table) = self.host_lft.as_mut() {
                table[node.index()][dst] = NONE;
            }
        } else {
            let ord = self.switch_ordinal(node);
            self.switch_lft[ord][dst] = NONE;
        }
    }

    /// Egress port used by `node` toward destination host `dst`.
    ///
    /// Hosts with a single cable implicitly return `Up(0)` (or `None` for
    /// self-delivery).
    pub fn egress(&self, node: NodeId, dst: usize) -> Option<PortRef> {
        if node.0 < self.num_hosts {
            if node.index() == dst {
                return None;
            }
            match &self.host_lft {
                Some(t) => decode(t[node.index()][dst]),
                None => Some(PortRef::Up(0)),
            }
        } else {
            decode(self.switch_lft[self.switch_ordinal(node)][dst])
        }
    }

    /// Streams the channels of the `src`→`dst` path to `f` without
    /// allocating. Semantics (hop budget, up*/down* check, errors) are
    /// identical to [`RoutingTable::trace`]; on error, channels already
    /// visited have been passed to `f` — callers that accumulate state must
    /// discard it on `Err`.
    pub fn walk(
        &self,
        topo: &Topology,
        src: usize,
        dst: usize,
        mut f: impl FnMut(ChannelId),
    ) -> Result<(), RouteError> {
        if src == dst {
            return Ok(());
        }
        let max_hops = 2 * topo.height() + 2;
        let mut at = topo.host(src);
        let mut went_down = false;
        for _ in 0..max_hops {
            let port = self
                .egress(at, dst)
                .ok_or(RouteError::NoRoute { at, dst })?;
            match port {
                PortRef::Up(_) if went_down => {
                    return Err(RouteError::NotUpDown { src, dst });
                }
                PortRef::Up(_) => {}
                PortRef::Down(_) => went_down = true,
            }
            let ch = topo.egress_channel(at, port);
            let next = topo.channel_target(ch);
            f(ch);
            at = next;
            if at == topo.host(dst) {
                return Ok(());
            }
        }
        Err(RouteError::Loop { src, dst })
    }

    /// Traces the path from `src` host to `dst` host through the tables.
    pub fn trace(&self, topo: &Topology, src: usize, dst: usize) -> Result<Path, RouteError> {
        let mut channels = Vec::new();
        self.walk(topo, src, dst, |ch| channels.push(ch))?;
        let mut nodes = Vec::with_capacity(channels.len() + 1);
        nodes.push(topo.host(src));
        nodes.extend(channels.iter().map(|&ch| topo.channel_target(ch)));
        Ok(Path { channels, nodes })
    }

    /// Validates full reachability and up*/down* shape for all (or a capped
    /// sample of) host pairs. Returns the number of pairs checked.
    pub fn validate(&self, topo: &Topology, max_pairs: usize) -> Result<usize, RouteError> {
        let n = topo.num_hosts();
        let total = n * n;
        let stride = (total / max_pairs.max(1)).max(1);
        let mut checked = 0;
        let mut i = 0;
        while i < total {
            let (src, dst) = (i / n, i % n);
            self.trace(topo, src, dst)?;
            checked += 1;
            i += stride;
        }
        Ok(checked)
    }

    /// Stable FNV-1a fingerprint over every LFT entry (and the host tables,
    /// when present). Two tables fingerprint equal iff they program the
    /// same egress port for every `(node, dst)` pair — the cheap way to pin
    /// bit-identity between routing engines in tests and benches. The
    /// algorithm label is deliberately excluded.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf29ce484222325;
        const PRIME: u64 = 0x00000100000001b3;
        let mut h = OFFSET;
        let mut mix = |v: u32| {
            for b in v.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.num_hosts);
        for row in &self.switch_lft {
            for &e in row {
                mix(e);
            }
        }
        if let Some(hosts) = &self.host_lft {
            for row in hosts {
                for &e in row {
                    mix(e);
                }
            }
        }
        h
    }

    /// Number of destinations with a programmed entry at `node`.
    pub fn programmed_entries(&self, node: NodeId) -> usize {
        if node.0 < self.num_hosts {
            match &self.host_lft {
                Some(t) => t[node.index()].iter().filter(|&&e| e != NONE).count(),
                None => 0,
            }
        } else {
            self.switch_lft[self.switch_ordinal(node)]
                .iter()
                .filter(|&&e| e != NONE)
                .count()
        }
    }
}

/// Dense `(node, destination host) → egress channel` table precomputed from
/// a [`RoutingTable`].
///
/// [`RoutingTable::egress`] decodes an LFT entry and
/// [`Topology::egress_channel`] then maps the port to a channel on every
/// lookup; a simulator doing both per packet-hop pays that cost millions of
/// times for a table that never changes. This flattens the composition into
/// one `u32` load. Entries are `u32::MAX` where no route exists (self
/// delivery or an unprogrammed LFT slot), mirroring `egress` returning
/// `None`. Size is `num_nodes × num_hosts × 4` bytes — for the simulated
/// fabrics (≤ thousands of hosts) this is a few MiB at most.
#[derive(Debug, Clone)]
pub struct NextChannelTable {
    num_hosts: u32,
    next: Vec<u32>,
}

impl NextChannelTable {
    /// Precomputes every `(node, dst)` next-channel from `rt`.
    pub fn build(topo: &Topology, rt: &RoutingTable) -> Self {
        let hosts = topo.num_hosts();
        let nodes = topo.num_nodes();
        let mut next = vec![NONE; nodes * hosts];
        for n in 0..nodes {
            let node = NodeId(n as u32);
            let row = &mut next[n * hosts..(n + 1) * hosts];
            for (dst, slot) in row.iter_mut().enumerate() {
                if let Some(port) = rt.egress(node, dst) {
                    *slot = topo.egress_channel(node, port).0;
                }
            }
        }
        Self {
            num_hosts: hosts as u32,
            next,
        }
    }

    /// The channel `node` forwards on toward host `dst`, or `None` when the
    /// routing table has no entry (self delivery or unreachable).
    #[inline]
    pub fn next_channel(&self, node: NodeId, dst: usize) -> Option<ChannelId> {
        let e = self.next[node.0 as usize * self.num_hosts as usize + dst];
        if e == NONE {
            None
        } else {
            Some(ChannelId(e))
        }
    }

    /// Hints the CPU to pull the `(node, dst)` entry toward L1. At fabric
    /// scale the table spans tens of megabytes, so a cold lookup is a
    /// guaranteed cache miss; event-driven simulators know the next few
    /// lookups one event ahead and can hide that latency. No-op on
    /// non-x86_64 targets; never affects results.
    #[inline]
    pub fn prefetch(&self, node: NodeId, dst: usize) {
        let idx = node.0 as usize * self.num_hosts as usize + dst;
        #[cfg(target_arch = "x86_64")]
        if let Some(e) = self.next.get(idx) {
            unsafe {
                std::arch::x86_64::_mm_prefetch(
                    e as *const u32 as *const i8,
                    std::arch::x86_64::_MM_HINT_T0,
                );
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        let _ = idx;
    }

    /// Bytes held by the table.
    pub fn size_bytes(&self) -> usize {
        self.next.len() * std::mem::size_of::<u32>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::PgftSpec;

    fn tiny() -> Topology {
        Topology::build(PgftSpec::from_slices(&[2, 2], &[1, 2], &[1, 1]).unwrap())
    }

    /// Fill a trivially correct routing by hand for the 4-host tree.
    fn hand_routed(topo: &Topology) -> RoutingTable {
        let mut rt = RoutingTable::empty(topo, "hand");
        for s in topo.switches() {
            let node = topo.node(s);
            for dst in 0..topo.num_hosts() {
                if topo.is_ancestor_of(s, dst) {
                    // Go down toward the child subtree containing dst.
                    let l = node.level as usize;
                    let c = topo.spec().host_digit(dst, l - 1);
                    rt.set(s, dst, PortRef::Down(c));
                } else {
                    rt.set(s, dst, PortRef::Up((dst % 2) as u32));
                }
            }
        }
        rt
    }

    #[test]
    fn encode_decode_roundtrip() {
        for port in [
            PortRef::Up(0),
            PortRef::Up(17),
            PortRef::Down(0),
            PortRef::Down(35),
        ] {
            assert_eq!(decode(encode(port)), Some(port));
        }
        assert_eq!(decode(NONE), None);
    }

    #[test]
    fn self_path_is_empty() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        let p = rt.trace(&topo, 2, 2).unwrap();
        assert!(p.is_empty());
        assert_eq!(p.nodes, vec![topo.host(2)]);
        assert_eq!(p.apex_level(&topo), 0);
    }

    #[test]
    fn intra_leaf_path_has_two_hops() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        let p = rt.trace(&topo, 0, 1).unwrap();
        assert_eq!(p.len(), 2);
        assert_eq!(p.apex_level(&topo), 1);
    }

    #[test]
    fn cross_leaf_path_reaches_spine() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        let p = rt.trace(&topo, 0, 3).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.apex_level(&topo), 2);
        assert_eq!(*p.nodes.last().unwrap(), topo.host(3));
    }

    #[test]
    fn validate_full_mesh() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        assert_eq!(rt.validate(&topo, usize::MAX).unwrap(), 16);
    }

    #[test]
    fn missing_entry_reported() {
        let topo = tiny();
        let rt = RoutingTable::empty(&topo, "empty");
        let err = rt.trace(&topo, 0, 3).unwrap_err();
        assert!(matches!(err, RouteError::NoRoute { .. }));
    }

    #[test]
    fn up_after_down_rejected() {
        let topo = tiny();
        let mut rt = hand_routed(&topo);
        // Corrupt: leaf 1 bounces traffic for host 0 back up even though the
        // packet arrives from above... construct: spine routes down to leaf 0
        // for dst 0; make leaf 0 route *up* for dst 0 instead of down.
        let leaf0 = topo.node_at(1, 0).unwrap();
        rt.set(leaf0, 0, PortRef::Up(0));
        let err = rt.trace(&topo, 1, 0).unwrap_err();
        // Host 1 -> leaf0 (up) -> spine? No: host1's first hop is leaf0 and
        // leaf0 says Up for dst 0, spine says Down to leaf0, leaf0 says Up
        // again -> loop or not-up-down.
        assert!(matches!(
            err,
            RouteError::NotUpDown { .. } | RouteError::Loop { .. }
        ));
    }

    #[test]
    fn walk_matches_trace() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        for src in 0..topo.num_hosts() {
            for dst in 0..topo.num_hosts() {
                let mut walked = Vec::new();
                rt.walk(&topo, src, dst, |ch| walked.push(ch)).unwrap();
                assert_eq!(walked, rt.trace(&topo, src, dst).unwrap().channels);
            }
        }
    }

    #[test]
    fn walk_propagates_errors() {
        let topo = tiny();
        let rt = RoutingTable::empty(&topo, "empty");
        let err = rt.walk(&topo, 0, 3, |_| {}).unwrap_err();
        assert!(matches!(err, RouteError::NoRoute { .. }));
    }

    #[test]
    fn next_channel_table_matches_egress() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        let tbl = NextChannelTable::build(&topo, &rt);
        for n in 0..topo.num_nodes() {
            let node = NodeId(n as u32);
            for dst in 0..topo.num_hosts() {
                let expect = rt
                    .egress(node, dst)
                    .map(|port| topo.egress_channel(node, port));
                assert_eq!(tbl.next_channel(node, dst), expect);
            }
        }
        assert_eq!(tbl.size_bytes(), topo.num_nodes() * topo.num_hosts() * 4);
    }

    #[test]
    fn fingerprint_tracks_entries_not_labels() {
        let topo = tiny();
        let a = hand_routed(&topo);
        let mut b = hand_routed(&topo);
        b.algorithm = "same entries, different label".to_string();
        assert_eq!(a.fingerprint(), b.fingerprint());
        b.set(topo.node_at(1, 0).unwrap(), 3, PortRef::Up(0));
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(
            RoutingTable::empty(&topo, "empty").fingerprint(),
            a.fingerprint()
        );
    }

    #[test]
    fn programmed_entry_count() {
        let topo = tiny();
        let rt = hand_routed(&topo);
        for s in topo.switches() {
            assert_eq!(rt.programmed_entries(s), topo.num_hosts());
        }
    }
}
