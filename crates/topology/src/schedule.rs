//! Timed fault schedules: a deterministic timeline of link failures and
//! recoveries.
//!
//! A [`FaultSchedule`] is the script a fabric lifecycle plays out: at
//! picosecond `t`, cable `l` dies; later it comes back. Subnet-manager
//! sweeps (see `ftree-core`) consume the schedule in time order and repair
//! routing tables incrementally; the packet simulator consumes the same
//! schedule to decide which in-flight packets are lost.
//!
//! Schedules are plain data (serde-serializable, sorted by time) so an
//! experiment can be replayed bit-identically. Seeded scenario generation
//! lives in [`crate::chaos`]: [`crate::ChaosGen`] derives reproducible
//! typed scenarios (random cable faults, switch outages, flap storms,
//! brownouts) that lower onto this primitive timeline. The legacy
//! [`FaultSchedule::random_switch_links`] helper is deprecated in favour of
//! [`crate::ChaosGen::random_links`], which reproduces its event stream
//! exactly.

use serde::{Deserialize, Serialize};

use crate::error::TopologyError;
use crate::graph::Topology;

/// What happens to a link at a scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkEventKind {
    /// The cable dies: packets crossing it are lost from this instant on.
    Fail,
    /// The cable is reseated/replaced and carries traffic again.
    Recover,
}

/// One timed change to a single physical link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkEvent {
    /// Simulation time of the change, in picoseconds.
    pub time: u64,
    /// Physical link id (see [`Topology::link`]).
    pub link: u32,
    /// Fail or recover.
    pub kind: LinkEventKind,
}

/// A time-sorted list of link fail/recover events.
///
/// Construction sorts events by `(time, kind, link)` with `Fail` ordered
/// before `Recover` at the same instant (stably for full ties), so the
/// event order is a pure function of the event *set* — two schedules built
/// from the same events in any order are bit-identical, and a same-instant
/// fail+recover pair (a zero-dwell flap) always applies the failure first
/// and therefore nets out to a no-op. Consumers may rely on `events()`
/// being non-decreasing in `time`.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<LinkEvent>", into = "Vec<LinkEvent>")]
pub struct FaultSchedule {
    events: Vec<LinkEvent>,
}

impl From<Vec<LinkEvent>> for FaultSchedule {
    fn from(events: Vec<LinkEvent>) -> Self {
        Self::new(events)
    }
}

impl From<FaultSchedule> for Vec<LinkEvent> {
    fn from(sched: FaultSchedule) -> Self {
        sched.events
    }
}

/// SplitMix64 finalizer — the same stateless hash family the simulator uses
/// for jitter, so schedules are reproducible without carrying RNG state.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultSchedule {
    /// Builds a schedule from events in any order; they are sorted by
    /// `(time, kind, link)` with `Fail` before `Recover` at equal times, so
    /// the result is independent of input order.
    pub fn new(mut events: Vec<LinkEvent>) -> Self {
        events.sort_by_key(|e| {
            let kind_rank = match e.kind {
                LinkEventKind::Fail => 0u8,
                LinkEventKind::Recover => 1,
            };
            (e.time, kind_rank, e.link)
        });
        Self { events }
    }

    /// A schedule with no events (the fabric stays healthy).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The events, sorted by time.
    pub fn events(&self) -> &[LinkEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Time of the last event, or `None` for an empty schedule.
    pub fn end_time(&self) -> Option<u64> {
        self.events.last().map(|e| e.time)
    }

    /// Checks that every event references a link that exists in `topo`.
    pub fn validate(&self, topo: &Topology) -> Result<(), TopologyError> {
        for ev in &self.events {
            if ev.link as usize >= topo.num_links() {
                return Err(TopologyError::NoSuchLink {
                    link: ev.link,
                    num_links: topo.num_links(),
                });
            }
        }
        Ok(())
    }

    /// A reproducible schedule failing `count` distinct switch-to-switch
    /// cables (host cables are spared so no host becomes unreachable).
    ///
    /// Each chosen link fails at a hash-derived time in `[0, window)` and —
    /// when `repair_after > 0` — recovers `repair_after` picoseconds later.
    /// The same `(topo, seed, count, window, repair_after)` always yields
    /// the same schedule.
    #[deprecated(
        since = "0.1.0",
        note = "use ChaosGen::random_links(..).lower(topo) — it reproduces this \
                schedule event for event and composes with the other chaos \
                presets; convert existing schedules with ChaosSchedule::from_legacy"
    )]
    pub fn random_switch_links(
        topo: &Topology,
        seed: u64,
        count: usize,
        window: u64,
        repair_after: u64,
    ) -> Self {
        let candidates: Vec<u32> = (0..topo.num_links() as u32)
            .filter(|&l| !topo.node(topo.link(l).child).is_host())
            .collect();
        let want = count.min(candidates.len());
        let mut chosen: Vec<u32> = Vec::with_capacity(want);
        let mut attempt: u64 = 0;
        while chosen.len() < want {
            let idx = mix64(seed ^ mix64(attempt)) as usize % candidates.len();
            attempt += 1;
            let link = candidates[idx];
            if !chosen.contains(&link) {
                chosen.push(link);
            }
        }
        let mut events = Vec::with_capacity(want * 2);
        for (i, &link) in chosen.iter().enumerate() {
            let t = if window > 0 {
                mix64(seed.wrapping_add(0x5eed).wrapping_add(i as u64)) % window
            } else {
                0
            };
            events.push(LinkEvent {
                time: t,
                link,
                kind: LinkEventKind::Fail,
            });
            if repair_after > 0 {
                events.push(LinkEvent {
                    time: t + repair_after,
                    link,
                    kind: LinkEventKind::Recover,
                });
            }
        }
        Self::new(events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlft::catalog;
    use crate::Topology;

    #[test]
    fn events_are_sorted_stably() {
        let sched = FaultSchedule::new(vec![
            LinkEvent {
                time: 500,
                link: 1,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 100,
                link: 2,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 100,
                link: 3,
                kind: LinkEventKind::Fail,
            },
        ]);
        let order: Vec<(u64, u32)> = sched.events().iter().map(|e| (e.time, e.link)).collect();
        assert_eq!(order, vec![(100, 2), (100, 3), (500, 1)]);
        assert_eq!(sched.end_time(), Some(500));
    }

    #[test]
    fn schedule_order_is_a_function_of_the_event_set() {
        // Same events, shuffled input order → bit-identical schedule, with
        // Fail sorted ahead of Recover at equal times.
        let evs = [
            LinkEvent {
                time: 100,
                link: 4,
                kind: LinkEventKind::Recover,
            },
            LinkEvent {
                time: 100,
                link: 2,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 100,
                link: 3,
                kind: LinkEventKind::Fail,
            },
        ];
        let a = FaultSchedule::new(vec![evs[0], evs[1], evs[2]]);
        let b = FaultSchedule::new(vec![evs[2], evs[0], evs[1]]);
        assert_eq!(a.events(), b.events());
        assert_eq!(
            a.events()
                .iter()
                .map(|e| (e.time, e.kind, e.link))
                .collect::<Vec<_>>(),
            vec![
                (100, LinkEventKind::Fail, 2),
                (100, LinkEventKind::Fail, 3),
                (100, LinkEventKind::Recover, 4),
            ]
        );
    }

    #[test]
    #[allow(deprecated)]
    fn random_schedule_is_deterministic_and_switch_only() {
        let topo = Topology::build(catalog::nodes_324());
        let a = FaultSchedule::random_switch_links(&topo, 42, 5, 1_000_000, 2_000_000);
        let b = FaultSchedule::random_switch_links(&topo, 42, 5, 1_000_000, 2_000_000);
        assert_eq!(a.events(), b.events());
        assert_eq!(a.len(), 10, "5 failures + 5 recoveries");
        a.validate(&topo).unwrap();
        for ev in a.events() {
            let link = topo.link(ev.link);
            assert!(
                !topo.node(link.child).is_host(),
                "host cables must be spared"
            );
        }
        let c = FaultSchedule::random_switch_links(&topo, 43, 5, 1_000_000, 2_000_000);
        assert_ne!(a.events(), c.events(), "different seeds differ");
    }

    #[test]
    #[allow(deprecated)]
    fn zero_repair_means_permanent_failures() {
        let topo = Topology::build(catalog::nodes_128());
        let sched = FaultSchedule::random_switch_links(&topo, 7, 3, 0, 0);
        assert_eq!(sched.len(), 3);
        assert!(sched
            .events()
            .iter()
            .all(|e| e.kind == LinkEventKind::Fail && e.time == 0));
    }

    #[test]
    fn validate_rejects_out_of_range_links() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let sched = FaultSchedule::new(vec![LinkEvent {
            time: 0,
            link: topo.num_links() as u32,
            kind: LinkEventKind::Fail,
        }]);
        assert!(sched.validate(&topo).is_err());
    }
}
