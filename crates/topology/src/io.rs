//! Topology serialization: canonical-name parsing and an
//! `ibnetdiscover`-style text dump.
//!
//! The paper's tooling (`ibdm` / `ibutils`) works from text files describing
//! the cluster cabling. We provide the equivalent: [`write_text`] emits a
//! human-auditable cable list, and [`parse_spec`] reads the canonical
//! `PGFT(h; m...; w...; p...)` form (also accepted: `XGFT(h; m...; w...)`).

use std::fmt::Write as _;

use crate::error::TopologyError;
use crate::graph::Topology;
use crate::spec::PgftSpec;

/// Parses a canonical spec string such as `PGFT(3; 18,18,6; 1,18,3; 1,1,6)`
/// or `XGFT(2; 4,4; 1,4)`.
pub fn parse_spec(input: &str) -> Result<PgftSpec, TopologyError> {
    let s = input.trim();
    let err = |message: &str| TopologyError::Parse {
        line: 1,
        message: message.to_string(),
    };
    let (kind, rest) = s
        .split_once('(')
        .ok_or_else(|| err("expected `PGFT(...)` or `XGFT(...)`"))?;
    let kind = kind.trim();
    let body = rest
        .strip_suffix(')')
        .ok_or_else(|| err("missing closing parenthesis"))?;
    let parts: Vec<&str> = body.split(';').map(str::trim).collect();

    let parse_vec = |part: &str| -> Result<Vec<u32>, TopologyError> {
        part.split(',')
            .map(|tok| {
                tok.trim()
                    .parse::<u32>()
                    .map_err(|_| err(&format!("invalid integer `{tok}`")))
            })
            .collect()
    };

    let (m, w, p) = match (kind, parts.as_slice()) {
        ("PGFT", [h, m, w, p]) => {
            let height: usize = h.parse().map_err(|_| err("invalid height"))?;
            let (m, w, p) = (parse_vec(m)?, parse_vec(w)?, parse_vec(p)?);
            if m.len() != height {
                return Err(err("height disagrees with parameter vectors"));
            }
            (m, w, p)
        }
        ("XGFT", [h, m, w]) => {
            let height: usize = h.parse().map_err(|_| err("invalid height"))?;
            let (m, w) = (parse_vec(m)?, parse_vec(w)?);
            if m.len() != height {
                return Err(err("height disagrees with parameter vectors"));
            }
            let p = vec![1; m.len()];
            (m, w, p)
        }
        _ => return Err(err("expected `PGFT(h; m; w; p)` or `XGFT(h; m; w)`")),
    };
    PgftSpec::new(m, w, p)
}

/// Writes an `ibnetdiscover`-flavoured cable list: one line per physical
/// link, `child_name up_port -- parent_name down_port`.
pub fn write_text(topo: &Topology) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {}", topo.spec().canonical_name());
    let _ = writeln!(
        out,
        "# hosts={} switches={} links={}",
        topo.num_hosts(),
        topo.num_nodes() - topo.num_hosts(),
        topo.num_links()
    );
    for link in topo.links() {
        let _ = writeln!(
            out,
            "{} {} -- {} {}",
            topo.node_name(link.child),
            link.child_port,
            topo.node_name(link.parent),
            link.parent_port
        );
    }
    out
}

/// Writes the forwarding tables in an `ibroute`-flavoured listing: one
/// block per switch, one `dst_host : port` line per programmed entry
/// (`U<q>` up-going, `D<r>` down-going). This is what an operator would
/// diff against a live subnet manager's dump.
pub fn write_lft(topo: &Topology, rt: &crate::lft::RoutingTable) -> String {
    use crate::graph::PortRef;
    let mut out = String::new();
    let _ = writeln!(out, "# LFT dump, algorithm: {}", rt.algorithm);
    for sw in topo.switches() {
        let _ = writeln!(out, "switch {}", topo.node_name(sw));
        for dst in 0..topo.num_hosts() {
            match rt.egress(sw, dst) {
                Some(PortRef::Up(q)) => {
                    let _ = writeln!(out, "  {dst:5} : U{q}");
                }
                Some(PortRef::Down(r)) => {
                    let _ = writeln!(out, "  {dst:5} : D{r}");
                }
                None => {
                    let _ = writeln!(out, "  {dst:5} : -");
                }
            }
        }
    }
    out
}

/// Reads the spec back from a [`write_text`] dump (first header line).
pub fn parse_text_header(text: &str) -> Result<PgftSpec, TopologyError> {
    let first = text.lines().next().ok_or(TopologyError::Parse {
        line: 1,
        message: "empty topology file".to_string(),
    })?;
    let spec_str = first.trim_start_matches('#').trim();
    parse_spec(spec_str)
}

/// Parses a node name as printed by [`Topology::node_name`]
/// (`H0007`, `S2[3,0,1]`) into a NodeId of `topo`.
fn resolve_node(topo: &Topology, name: &str, line: usize) -> Result<crate::NodeId, TopologyError> {
    let err = |message: String| TopologyError::Parse { line, message };
    if let Some(num) = name.strip_prefix('H') {
        let host: usize = num
            .parse()
            .map_err(|_| err(format!("invalid host name `{name}`")))?;
        if host >= topo.num_hosts() {
            return Err(err(format!("host {host} beyond machine")));
        }
        Ok(topo.host(host))
    } else if let Some(rest) = name.strip_prefix('S') {
        let (level_str, digits_str) = rest
            .split_once('[')
            .ok_or_else(|| err(format!("invalid switch name `{name}`")))?;
        let level: usize = level_str
            .parse()
            .map_err(|_| err(format!("invalid level in `{name}`")))?;
        let digits: Vec<u32> = digits_str
            .trim_end_matches(']')
            .split(',')
            .map(|d| d.trim().parse::<u32>())
            .collect::<Result<_, _>>()
            .map_err(|_| err(format!("invalid digits in `{name}`")))?;
        if level == 0 || level > topo.height() || digits.len() != topo.height() {
            return Err(err(format!("switch `{name}` does not fit the spec")));
        }
        for (j, &d) in digits.iter().enumerate() {
            if d >= topo.spec().digit_radix(level, j) {
                return Err(err(format!("digit out of radix in `{name}`")));
            }
        }
        let index = topo.spec().index_of(level, &digits);
        topo.node_at(level, index)
            .map_err(|_| err(format!("no such switch `{name}`")))
    } else {
        Err(err(format!("unrecognized node name `{name}`")))
    }
}

/// Parses a full [`write_text`] dump back into a [`Topology`],
/// **verifying** that every cable line matches the PGFT connection rule —
/// the subnet-manager workflow of auditing a discovered fabric against its
/// intended design. Any missing, duplicate, or miswired cable is reported
/// with its line number.
pub fn parse_text(text: &str) -> Result<Topology, TopologyError> {
    let spec = parse_text_header(text)?;
    let topo = Topology::build(spec);
    let mut seen = vec![false; topo.num_links()];
    let mut cables = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| TopologyError::Parse {
            line: lineno,
            message,
        };
        let parts: Vec<&str> = line.split_whitespace().collect();
        let [child_name, q_str, sep, parent_name, r_str] = parts[..] else {
            return Err(err(format!("malformed cable line `{line}`")));
        };
        if sep != "--" {
            return Err(err("expected `--` separator".to_string()));
        }
        let child = resolve_node(&topo, child_name, lineno)?;
        let parent = resolve_node(&topo, parent_name, lineno)?;
        let q: usize = q_str
            .parse()
            .map_err(|_| err("invalid up-port".to_string()))?;
        let r: u32 = r_str
            .parse()
            .map_err(|_| err("invalid down-port".to_string()))?;
        let node = topo.node(child);
        let peer = node
            .up
            .get(q)
            .ok_or_else(|| err(format!("{child_name} has no up-port {q}")))?;
        if peer.peer != parent || peer.peer_port != r {
            return Err(err(format!(
                "miswired cable: {child_name} port {q} should reach {} port {}, file says \
                 {parent_name} port {r}",
                topo.node_name(peer.peer),
                peer.peer_port
            )));
        }
        if seen[peer.link as usize] {
            return Err(err(format!("duplicate cable `{line}`")));
        }
        seen[peer.link as usize] = true;
        cables += 1;
    }
    if cables != topo.num_links() {
        return Err(TopologyError::Parse {
            line: text.lines().count(),
            message: format!(
                "cable list incomplete: {cables} of {} cables present",
                topo.num_links()
            ),
        });
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rlft::catalog;

    #[test]
    fn parse_pgft_roundtrip() {
        let spec = catalog::nodes_1944();
        let parsed = parse_spec(&spec.canonical_name()).unwrap();
        assert_eq!(parsed, spec);
    }

    #[test]
    fn parse_xgft() {
        let spec = parse_spec("XGFT(2; 4,4; 1,4)").unwrap();
        assert_eq!(spec, catalog::fig4_xgft_16());
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "PGFT",
            "PGFT(2; 4,4; 1,4)",      // missing p vector
            "PGFT(3; 4,4; 1,4; 1,1)", // height mismatch
            "PGFT(2; 4,x; 1,4; 1,1)", // bad int
            "GFT(2; 4,4; 1,4; 1,1)",  // unknown kind
        ] {
            assert!(parse_spec(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn text_dump_roundtrips_spec() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let text = write_text(&topo);
        assert_eq!(parse_text_header(&text).unwrap(), *topo.spec());
        // one line per link plus two headers
        assert_eq!(text.lines().count(), 2 + topo.num_links());
    }

    #[test]
    fn full_text_roundtrip() {
        for spec in [catalog::fig4_pgft_16(), catalog::nodes_128()] {
            let topo = Topology::build(spec);
            let text = write_text(&topo);
            let parsed = parse_text(&text).expect("own dump must verify");
            assert_eq!(parsed.num_links(), topo.num_links());
            assert_eq!(parsed.spec(), topo.spec());
        }
    }

    #[test]
    fn parse_text_detects_miswired_cable() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let text = write_text(&topo);
        // Corrupt one cable's parent port.
        let corrupted: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == 5 {
                    let mut parts: Vec<String> = l.split_whitespace().map(String::from).collect();
                    let r: u32 = parts[4].parse().unwrap();
                    parts[4] = format!("{}", (r + 1) % 8);
                    parts.join(" ")
                } else {
                    l.to_string()
                }
            })
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse_text(&corrupted).unwrap_err();
        assert!(matches!(err, TopologyError::Parse { line: 6, .. }), "{err}");
        assert!(err.to_string().contains("miswired"));
    }

    #[test]
    fn parse_text_detects_missing_cable() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let text = write_text(&topo);
        let truncated: String = text
            .lines()
            .take(text.lines().count() - 1)
            .collect::<Vec<_>>()
            .join("\n");
        let err = parse_text(&truncated).unwrap_err();
        assert!(err.to_string().contains("incomplete"));
    }

    #[test]
    fn parse_text_detects_duplicates_and_bad_names() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let text = write_text(&topo);
        let line3 = text.lines().nth(3).unwrap().to_string();
        let duplicated = format!("{text}{line3}\n");
        assert!(parse_text(&duplicated).is_err());
        let garbage = text.replace("H0002", "X0002");
        assert!(parse_text(&garbage).is_err());
    }

    #[test]
    fn lft_dump_covers_every_switch_and_destination() {
        use crate::graph::PortRef;
        use crate::lft::RoutingTable;
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut rt = RoutingTable::empty(&topo, "test");
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                rt.set(sw, dst, PortRef::Up((dst % 4) as u32));
            }
        }
        let dump = write_lft(&topo, &rt);
        let switches = topo.num_nodes() - topo.num_hosts();
        assert_eq!(
            dump.lines().filter(|l| l.starts_with("switch ")).count(),
            switches
        );
        assert_eq!(
            dump.lines().filter(|l| l.contains(" : U")).count(),
            switches * topo.num_hosts()
        );
        assert!(dump.starts_with("# LFT dump, algorithm: test"));
    }

    #[test]
    fn lft_dump_marks_unprogrammed_entries() {
        use crate::lft::RoutingTable;
        let topo = Topology::build(catalog::fig4_pgft_16());
        let rt = RoutingTable::empty(&topo, "empty");
        let dump = write_lft(&topo, &rt);
        assert!(dump.lines().any(|l| l.trim_end().ends_with(": -")));
    }

    #[test]
    fn text_dump_lists_every_host_once_as_child() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let text = write_text(&topo);
        for h in 0..topo.num_hosts() {
            let name = topo.node_name(topo.host(h));
            assert_eq!(
                text.lines().filter(|l| l.starts_with(&name)).count(),
                1,
                "host {h} must appear exactly once as a link child"
            );
        }
    }
}
