//! Serialization round-trips: specs, topologies, routing tables and
//! failure sets survive a JSON round-trip intact, so planned fabrics can
//! be checked into configuration management.

use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::{PgftSpec, RoutingTable, Topology};

#[test]
fn spec_roundtrip() {
    for spec in [catalog::nodes_1944(), catalog::fig4_pgft_16()] {
        let json = serde_json::to_string(&spec).unwrap();
        let back: PgftSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
    }
}

#[test]
fn topology_roundtrip() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let json = serde_json::to_string(&topo).unwrap();
    let back: Topology = serde_json::from_str(&json).unwrap();
    assert_eq!(back.num_hosts(), topo.num_hosts());
    assert_eq!(back.num_links(), topo.num_links());
    assert_eq!(back.spec(), topo.spec());
    // Structural equality of the cabling.
    for (a, b) in topo.links().iter().zip(back.links()) {
        assert_eq!((a.child, a.child_port), (b.child, b.child_port));
        assert_eq!((a.parent, a.parent_port), (b.parent, b.parent_port));
    }
}

#[test]
fn routing_table_roundtrip() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let mut rt = RoutingTable::empty(&topo, "test");
    for sw in topo.switches() {
        for dst in 0..topo.num_hosts() {
            if topo.is_ancestor_of(sw, dst) {
                let c = topo
                    .spec()
                    .host_digit(dst, topo.node(sw).level as usize - 1);
                rt.set(sw, dst, ftree_topology::PortRef::Down(c));
            } else {
                rt.set(sw, dst, ftree_topology::PortRef::Up((dst % 4) as u32));
            }
        }
    }
    let json = serde_json::to_string(&rt).unwrap();
    let back: RoutingTable = serde_json::from_str(&json).unwrap();
    for sw in topo.switches() {
        for dst in 0..topo.num_hosts() {
            assert_eq!(back.egress(sw, dst), rt.egress(sw, dst));
        }
    }
    assert_eq!(back.algorithm, "test");
}

#[test]
fn failure_set_roundtrip() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let mut f = LinkFailures::none(&topo);
    f.fail(3).unwrap();
    f.fail(17).unwrap();
    let json = serde_json::to_string(&f).unwrap();
    let back: LinkFailures = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 2);
    assert!(!back.is_live(3) && !back.is_live(17));
    assert!(back.is_live(4));
    assert_eq!(back.fingerprint(), topo.fingerprint());
    assert_eq!(back.version(), f.version());
    back.verify_for(&topo).unwrap();
}

#[test]
fn fault_schedule_roundtrip() {
    use ftree_topology::{FaultSchedule, LinkEvent, LinkEventKind};

    let sched = FaultSchedule::new(vec![
        LinkEvent {
            time: 900,
            link: 7,
            kind: LinkEventKind::Recover,
        },
        LinkEvent {
            time: 100,
            link: 7,
            kind: LinkEventKind::Fail,
        },
        LinkEvent {
            time: 100,
            link: 2,
            kind: LinkEventKind::Fail,
        },
    ]);
    let json = serde_json::to_string(&sched).unwrap();
    let back: FaultSchedule = serde_json::from_str(&json).unwrap();
    assert_eq!(back.len(), 3);
    let times: Vec<u64> = back.events().iter().map(|e| e.time).collect();
    assert_eq!(times, vec![100, 100, 900], "events stay time-sorted");
}
