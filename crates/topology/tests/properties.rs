//! Property-based tests of the PGFT construction invariants.

use proptest::prelude::*;

use ftree_topology::{io, NodeId, PgftSpec, Topology};

/// Random small-but-arbitrary PGFT tuples (not necessarily RLFT).
fn pgft_spec() -> impl Strategy<Value = PgftSpec> {
    (1usize..=3).prop_flat_map(|h| {
        (
            prop::collection::vec(1u32..5, h),
            prop::collection::vec(1u32..4, h),
            prop::collection::vec(1u32..3, h),
        )
            .prop_filter_map("size cap", |(m, w, p)| {
                let hosts: u64 = m.iter().map(|&x| x as u64).product();
                (hosts <= 512).then(|| PgftSpec::new(m, w, p).ok())?
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Digit decomposition round-trips at every level.
    #[test]
    fn digits_roundtrip(spec in pgft_spec(), raw in 0usize..10_000) {
        for level in 0..=spec.height() {
            let count = spec.nodes_at_level(level);
            let idx = raw % count;
            let digits = spec.digits_of(level, idx);
            prop_assert_eq!(spec.index_of(level, &digits), idx);
            for (j, &d) in digits.iter().enumerate() {
                prop_assert!(d < spec.digit_radix(level, j));
            }
        }
    }

    /// Every port is cabled and cabling is an involution (peer's peer is
    /// self on the same port).
    #[test]
    fn cabling_is_symmetric(spec in pgft_spec()) {
        let topo = Topology::build(spec);
        for (id, node) in topo.nodes().iter().enumerate() {
            for (q, pp) in node.up.iter().enumerate() {
                let back = topo.node(pp.peer).down[pp.peer_port as usize];
                prop_assert_eq!(back.peer, NodeId(id as u32));
                prop_assert_eq!(back.peer_port as usize, q);
            }
            for (r, pp) in node.down.iter().enumerate() {
                let back = topo.node(pp.peer).up[pp.peer_port as usize];
                prop_assert_eq!(back.peer, NodeId(id as u32));
                prop_assert_eq!(back.peer_port as usize, r);
            }
        }
    }

    /// Link count matches the closed form: sum over levels of
    /// (#level-l nodes) * w_{l+1} * p_{l+1}.
    #[test]
    fn link_count_closed_form(spec in pgft_spec()) {
        let expected: usize = (0..spec.height())
            .map(|l| spec.nodes_at_level(l) * (spec.up_ports(l) as usize))
            .sum();
        let topo = Topology::build(spec);
        prop_assert_eq!(topo.num_links(), expected);
    }

    /// Parallel cables connect the same node pair, and distinct up-ports
    /// never share (peer, peer_port).
    #[test]
    fn ports_are_distinct(spec in pgft_spec()) {
        let topo = Topology::build(spec);
        for node in topo.nodes() {
            let mut seen = std::collections::HashSet::new();
            for pp in &node.up {
                prop_assert!(seen.insert((pp.peer, pp.peer_port)));
            }
        }
    }

    /// Every node's ancestor set: a level-l node reaches exactly
    /// `m_prefix(l)` hosts downward.
    #[test]
    fn ancestor_counts(spec in pgft_spec()) {
        let topo = Topology::build(spec);
        let h = topo.height();
        for level in 1..=h {
            let node = topo.node_at(level, 0).unwrap();
            let below = (0..topo.num_hosts())
                .filter(|&host| topo.is_ancestor_of(node, host))
                .count();
            prop_assert_eq!(below, topo.spec().m_prefix(level));
        }
    }

    /// Canonical-name serialization round-trips.
    #[test]
    fn canonical_name_roundtrip(spec in pgft_spec()) {
        let parsed = io::parse_spec(&spec.canonical_name()).unwrap();
        prop_assert_eq!(parsed, spec);
    }

    /// Text dump header parses back to the spec and lists every link once.
    #[test]
    fn text_dump_consistent(spec in pgft_spec()) {
        let topo = Topology::build(spec.clone());
        let text = io::write_text(&topo);
        prop_assert_eq!(io::parse_text_header(&text).unwrap(), spec);
        prop_assert_eq!(text.lines().count(), 2 + topo.num_links());
    }

    /// Full dump verify-parses for arbitrary PGFTs (every cable matches the
    /// connection rule).
    #[test]
    fn full_dump_verifies(spec in pgft_spec()) {
        let topo = Topology::build(spec);
        let text = io::write_text(&topo);
        let parsed = io::parse_text(&text).unwrap();
        prop_assert_eq!(parsed.num_links(), topo.num_links());
    }
}
