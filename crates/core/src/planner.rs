//! The contention-free job planner — the paper's recipe as one API.
//!
//! Paper Sec. I: *"to form such congestion-free configuration, MPI programs
//! should utilize collective communication, MPI-node-order should be
//! topology aware, and the packets routing should match the MPI
//! communication patterns."* A [`Job`] bundles those three ingredients —
//! topology, routing tables and rank order — and translates rank-space CPS
//! stages into the port-space flows that analysis and simulation consume.

use ftree_collectives::{Stage, TopoAwareRd};
use ftree_topology::{RoutingTable, Topology};

use crate::ordering::NodeOrder;
use crate::router::{DModK, Dmodc, MinHopGreedy, RandomUpstream, Router};

/// Routing algorithm selector — a thin, copyable enum over the
/// [`crate::router`] engines, for APIs that want a value instead of a
/// boxed trait object (CLI flags, job configs, serialized experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingAlgo {
    /// The paper's D-Mod-K closed form (eq. 1).
    DModK,
    /// Fault-resilient load-balanced D-Mod-K (Gliksberg-style Dmodc).
    Dmodc,
    /// Random up-port per destination (seeded).
    Random(u64),
    /// Greedy least-loaded min-hop (OpenSM-style).
    MinHopGreedy,
}

impl RoutingAlgo {
    /// The boxed engine this selector stands for.
    pub fn engine(self) -> Box<dyn Router> {
        match self {
            RoutingAlgo::DModK => Box::new(DModK),
            RoutingAlgo::Dmodc => Box::new(Dmodc),
            RoutingAlgo::Random(seed) => Box::new(RandomUpstream::new(seed)),
            RoutingAlgo::MinHopGreedy => Box::new(MinHopGreedy),
        }
    }

    /// Builds the forwarding tables on a healthy `topo`.
    pub fn route(self, topo: &Topology) -> RoutingTable {
        // Span doubles as the "core::planner_route" phase timer; the routing
        // engine's own phase/span (e.g. core::route_dmodk) nests under it.
        let mut span = ftree_obs::wall_span_global("core::planner_route");
        span.attr("algo", format!("{self:?}"));
        span.attr("hosts", topo.num_hosts() as u64);
        self.engine().route_healthy(topo)
    }
}

/// A planned MPI job: topology + routing + rank order.
#[derive(Debug, Clone)]
pub struct Job<'t> {
    /// The fabric the job runs on.
    pub topo: &'t Topology,
    /// Programmed forwarding tables.
    pub routing: RoutingTable,
    /// MPI rank -> end-port assignment.
    pub order: NodeOrder,
}

impl<'t> Job<'t> {
    /// Arbitrary combination of routing and ordering.
    pub fn new(topo: &'t Topology, algo: RoutingAlgo, order: NodeOrder) -> Self {
        Self {
            topo,
            routing: algo.route(topo),
            order,
        }
    }

    /// The paper's contention-free configuration for the full machine:
    /// D-Mod-K routing with topology-order ranks.
    pub fn contention_free(topo: &'t Topology) -> Self {
        Self::new(topo, RoutingAlgo::DModK, NodeOrder::topology(topo))
    }

    /// Contention-free configuration for a partially-populated job: ranks
    /// follow topology order over the populated ports.
    pub fn contention_free_partial(topo: &'t Topology, ports: Vec<u32>) -> Self {
        Self::new(topo, RoutingAlgo::DModK, NodeOrder::topology_subset(ports))
    }

    /// Number of ranks in the job (may be smaller than the machine).
    pub fn num_ranks(&self) -> u32 {
        self.order.num_ranks() as u32
    }

    /// Port-space flows realizing a rank-space CPS stage.
    pub fn stage_flows(&self, stage: &Stage) -> Vec<(u32, u32)> {
        self.order.port_flows(stage)
    }

    /// The Sec. VI bidirectional sequence matched to this machine's level
    /// arities — the recommended replacement for plain recursive doubling
    /// on a fully-populated job.
    pub fn recommended_bidirectional(&self) -> TopoAwareRd {
        TopoAwareRd::new(self.topo.spec().ms().to_vec())
    }
}

/// Largest congestion-free sub-allocation unit of an RLFT: `prod w_i`
/// consecutive topology-ordered ports (paper Sec. V.A — e.g. multiples of
/// 324 nodes on the maximal 3-level 36-port tree).
pub fn suballocation_unit(topo: &Topology) -> usize {
    topo.spec().w_prefix(topo.height())
}

/// The first `count` topology-ordered ports, for carving an aligned
/// sub-allocation. `count` should be a multiple of [`suballocation_unit`]
/// for the Theorem 1 guarantee to carry over.
pub fn aligned_suballocation(topo: &Topology, count: usize) -> Vec<u32> {
    assert!(count <= topo.num_hosts());
    (0..count as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_collectives::{Cps, PermutationSequence};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn contention_free_job_shape() {
        let topo = Topology::build(catalog::nodes_128());
        let job = Job::contention_free(&topo);
        assert_eq!(job.num_ranks(), 128);
        assert_eq!(job.routing.algorithm, "d-mod-k");
        assert_eq!(job.order.label, "topology");
    }

    #[test]
    fn partial_job_rank_count() {
        let topo = Topology::build(catalog::nodes_128());
        let ports: Vec<u32> = (0..100).collect();
        let job = Job::contention_free_partial(&topo, ports);
        assert_eq!(job.num_ranks(), 100);
    }

    #[test]
    fn stage_flows_are_port_space() {
        let topo = Topology::build(catalog::nodes_128());
        let job = Job::contention_free(&topo);
        let stage = Cps::Ring.stage(job.num_ranks(), 0);
        let flows = job.stage_flows(&stage);
        assert_eq!(flows.len(), 128);
        assert_eq!(flows[0], (0, 1));
        assert_eq!(flows[127], (127, 0));
    }

    #[test]
    fn suballocation_unit_matches_paper_example() {
        // Maximal 3-level 36-port tree: units of 324 nodes, 36 of them.
        let topo = Topology::build(catalog::rlft3_full(18));
        assert_eq!(suballocation_unit(&topo), 324);
        assert_eq!(topo.num_hosts() / suballocation_unit(&topo), 36);
    }

    #[test]
    fn routing_algo_labels() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        assert_eq!(RoutingAlgo::DModK.route(&topo).algorithm, "d-mod-k");
        // Healthy Dmodc IS the closed form, label included.
        assert_eq!(RoutingAlgo::Dmodc.route(&topo).algorithm, "d-mod-k");
        assert_eq!(RoutingAlgo::Dmodc.engine().name(), "dmodc");
        assert_eq!(
            RoutingAlgo::Random(5).route(&topo).algorithm,
            "random(seed=5)"
        );
        assert_eq!(
            RoutingAlgo::MinHopGreedy.route(&topo).algorithm,
            "minhop-greedy"
        );
    }

    #[test]
    fn recommended_bidirectional_matches_machine() {
        let topo = Topology::build(catalog::nodes_324());
        let job = Job::contention_free(&topo);
        let seq = job.recommended_bidirectional();
        assert_eq!(seq.num_ranks(), 324);
    }
}
