//! Baseline routing algorithms D-Mod-K is evaluated against.
//!
//! The paper attributes the published 40% bandwidth loss to routings that
//! ignore the collective's structure. Two deterministic baselines bracket
//! that behaviour:
//!
//! * [`route_random`] — each switch picks a uniformly random (seeded)
//!   up-going port per destination. A stand-in for routing engines with no
//!   structural awareness at all.
//! * [`route_minhop_greedy`] — each switch balances destinations across
//!   up-going ports by a least-loaded counter, scanning destinations in
//!   index order (the classic OpenSM min-hop/updn port balancing). Locally
//!   balanced, globally oblivious: every up-port carries the same *number*
//!   of destinations, but the digit structure D-Mod-K exploits is lost
//!   above the first level.
//!
//! Both fill ordinary destination-based LFTs, so analysis and simulation
//! treat all routings identically. Down-paths reuse the D-Mod-K descent
//! (destination-determined child and cable) — the comparison isolates the
//! *up-path* choice, which is where blocking can occur (paper Sec. V).
//!
//! Both functions are deprecated thin wrappers over the [`crate::router`]
//! engines ([`crate::RandomUpstream`], [`crate::MinHopGreedy`]), which
//! additionally accept a [`ftree_topology::LinkFailures`] state.

use ftree_topology::{RoutingTable, Topology};

use crate::router::{MinHopGreedy, RandomUpstream, Router};

/// Random up-port routing with a deterministic seed.
#[deprecated(
    note = "use the `RandomUpstream` engine: `RandomUpstream::new(seed).route_healthy(topo)`"
)]
pub fn route_random(topo: &Topology, seed: u64) -> RoutingTable {
    RandomUpstream::new(seed).route_healthy(topo)
}

/// Greedy least-loaded min-hop routing (OpenSM-style port counters).
#[deprecated(note = "use the `MinHopGreedy` engine: `MinHopGreedy.route_healthy(topo)`")]
pub fn route_minhop_greedy(topo: &Topology) -> RoutingTable {
    MinHopGreedy.route_healthy(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::{PortRef, Topology};

    #[test]
    fn random_routing_is_valid_and_deterministic() {
        let topo = Topology::build(catalog::nodes_128());
        let a = RandomUpstream::new(7).route_healthy(&topo);
        let b = RandomUpstream::new(7).route_healthy(&topo);
        let c = RandomUpstream::new(8).route_healthy(&topo);
        a.validate(&topo, 2000).unwrap();
        c.validate(&topo, 2000).unwrap();
        let mut same = true;
        let mut diff_c = false;
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                same &= a.egress(sw, dst) == b.egress(sw, dst);
                diff_c |= a.egress(sw, dst) != c.egress(sw, dst);
            }
        }
        assert!(same, "same seed must reproduce the same tables");
        assert!(diff_c, "different seeds should differ somewhere");
    }

    #[test]
    fn minhop_routing_is_valid() {
        let topo = Topology::build(catalog::nodes_324());
        let rt = MinHopGreedy.route_healthy(&topo);
        rt.validate(&topo, 2000).unwrap();
    }

    #[test]
    fn minhop_balances_destination_counts() {
        let topo = Topology::build(catalog::nodes_128());
        let rt = MinHopGreedy.route_healthy(&topo);
        for sw in topo.switches() {
            let node = topo.node(sw);
            if node.up.is_empty() {
                continue;
            }
            let mut per_port = vec![0u32; node.up.len()];
            for dst in 0..topo.num_hosts() {
                if let Some(PortRef::Up(q)) = rt.egress(sw, dst) {
                    per_port[q as usize] += 1;
                }
            }
            let min = per_port.iter().min().unwrap();
            let max = per_port.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced: {per_port:?}");
        }
    }

    #[test]
    fn multi_cabled_hosts_get_tables() {
        // A PGFT with w1*p1 = 2: hosts must receive first-hop entries.
        let spec = ftree_topology::PgftSpec::from_slices(&[4, 4], &[2, 4], &[1, 2]).unwrap();
        let topo = Topology::build(spec);
        for rt in [
            RandomUpstream::new(1).route_healthy(&topo),
            MinHopGreedy.route_healthy(&topo),
        ] {
            rt.validate(&topo, usize::MAX).unwrap();
        }
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_engines() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let wrapped = route_random(&topo, 9);
        let engine = RandomUpstream::new(9).route_healthy(&topo);
        assert_eq!(wrapped.fingerprint(), engine.fingerprint());
        assert_eq!(wrapped.algorithm, engine.algorithm);
        let wrapped = route_minhop_greedy(&topo);
        let engine = MinHopGreedy.route_healthy(&topo);
        assert_eq!(wrapped.fingerprint(), engine.fingerprint());
        assert_eq!(wrapped.algorithm, engine.algorithm);
    }
}
