//! Baseline routing algorithms D-Mod-K is evaluated against.
//!
//! The paper attributes the published 40% bandwidth loss to routings that
//! ignore the collective's structure. Two deterministic baselines bracket
//! that behaviour:
//!
//! * [`route_random`] — each switch picks a uniformly random (seeded)
//!   up-going port per destination. A stand-in for routing engines with no
//!   structural awareness at all.
//! * [`route_minhop_greedy`] — each switch balances destinations across
//!   up-going ports by a least-loaded counter, scanning destinations in
//!   index order (the classic OpenSM min-hop/updn port balancing). Locally
//!   balanced, globally oblivious: every up-port carries the same *number*
//!   of destinations, but the digit structure D-Mod-K exploits is lost
//!   above the first level.
//!
//! Both fill ordinary destination-based LFTs, so analysis and simulation
//! treat all routings identically. Down-paths reuse the D-Mod-K descent
//! (destination-determined child and cable) — the comparison isolates the
//! *up-path* choice, which is where blocking can occur (paper Sec. V).

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ftree_topology::{PortRef, RoutingTable, Topology};

use crate::dmodk::dmodk_down_port;

/// Random up-port routing with a deterministic seed.
pub fn route_random(topo: &Topology, seed: u64) -> RoutingTable {
    let mut rt = RoutingTable::empty(topo, format!("random(seed={seed})"));
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let n = topo.num_hosts();
    let spec = topo.spec();

    if spec.up_ports(0) > 1 {
        for src in 0..n {
            for dst in 0..n {
                if src != dst {
                    let q = rng.gen_range(0..spec.up_ports(0));
                    rt.set(topo.host(src), dst, PortRef::Up(q));
                }
            }
        }
    }

    for sw in topo.switches() {
        let level = topo.node(sw).level as usize;
        let ups = spec.up_ports(level);
        for dst in 0..n {
            let port = if topo.is_ancestor_of(sw, dst) {
                PortRef::Down(dmodk_down_port(topo, level, dst))
            } else {
                PortRef::Up(rng.gen_range(0..ups))
            };
            rt.set(sw, dst, port);
        }
    }
    rt
}

/// Greedy least-loaded min-hop routing (OpenSM-style port counters).
pub fn route_minhop_greedy(topo: &Topology) -> RoutingTable {
    let mut rt = RoutingTable::empty(topo, "minhop-greedy");
    let n = topo.num_hosts();
    let spec = topo.spec();

    if spec.up_ports(0) > 1 {
        for src in 0..n {
            let mut counters = vec![0u32; spec.up_ports(0) as usize];
            for dst in 0..n {
                if src != dst {
                    let q = least_loaded(&counters);
                    counters[q as usize] += 1;
                    rt.set(topo.host(src), dst, PortRef::Up(q));
                }
            }
        }
    }

    for sw in topo.switches() {
        let level = topo.node(sw).level as usize;
        let mut counters = vec![0u32; spec.up_ports(level) as usize];
        for dst in 0..n {
            let port = if topo.is_ancestor_of(sw, dst) {
                PortRef::Down(dmodk_down_port(topo, level, dst))
            } else {
                let q = least_loaded(&counters);
                counters[q as usize] += 1;
                PortRef::Up(q)
            };
            rt.set(sw, dst, port);
        }
    }
    rt
}

#[inline]
fn least_loaded(counters: &[u32]) -> u32 {
    let mut best = 0usize;
    for (i, &c) in counters.iter().enumerate() {
        if c < counters[best] {
            best = i;
        }
    }
    best as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn random_routing_is_valid_and_deterministic() {
        let topo = Topology::build(catalog::nodes_128());
        let a = route_random(&topo, 7);
        let b = route_random(&topo, 7);
        let c = route_random(&topo, 8);
        a.validate(&topo, 2000).unwrap();
        c.validate(&topo, 2000).unwrap();
        let mut same = true;
        let mut diff_c = false;
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                same &= a.egress(sw, dst) == b.egress(sw, dst);
                diff_c |= a.egress(sw, dst) != c.egress(sw, dst);
            }
        }
        assert!(same, "same seed must reproduce the same tables");
        assert!(diff_c, "different seeds should differ somewhere");
    }

    #[test]
    fn minhop_routing_is_valid() {
        let topo = Topology::build(catalog::nodes_324());
        let rt = route_minhop_greedy(&topo);
        rt.validate(&topo, 2000).unwrap();
    }

    #[test]
    fn minhop_balances_destination_counts() {
        let topo = Topology::build(catalog::nodes_128());
        let rt = route_minhop_greedy(&topo);
        for sw in topo.switches() {
            let node = topo.node(sw);
            if node.up.is_empty() {
                continue;
            }
            let mut per_port = vec![0u32; node.up.len()];
            for dst in 0..topo.num_hosts() {
                if let Some(PortRef::Up(q)) = rt.egress(sw, dst) {
                    per_port[q as usize] += 1;
                }
            }
            let min = per_port.iter().min().unwrap();
            let max = per_port.iter().max().unwrap();
            assert!(max - min <= 1, "unbalanced: {per_port:?}");
        }
    }

    #[test]
    fn multi_cabled_hosts_get_tables() {
        // A PGFT with w1*p1 = 2: hosts must receive first-hop entries.
        let spec = ftree_topology::PgftSpec::from_slices(&[4, 4], &[2, 4], &[1, 2]).unwrap();
        let topo = Topology::build(spec);
        for rt in [route_random(&topo, 1), route_minhop_greedy(&topo)] {
            rt.validate(&topo, usize::MAX).unwrap();
        }
    }
}
