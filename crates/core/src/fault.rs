//! Fault-tolerant D-Mod-K: route around failed cables while staying as
//! close to the closed form as the fabric allows.
//!
//! The subnet-manager workflow the paper's routing lives in must survive
//! cable failures. This module computes, per `(node, destination)`, the
//! set of ports that still lead to the destination (`reachability`), then
//! fills LFTs with a *deviation-minimizing* rule: use the eq. 1 port if it
//! is alive and viable, otherwise the cyclically-next viable port. On a
//! healthy fabric the result is bit-identical to [`crate::route_dmodk`];
//! each failure perturbs only the destinations that crossed the dead
//! cable. Contention-freedom degrades gracefully and is *measured*, not
//! assumed — see the `failures` experiment binary.

use ftree_topology::failures::LinkFailures;
use ftree_topology::{NodeId, PortRef, RouteError, RoutingTable, Topology};

use crate::dmodk::{dmodk_down_port, dmodk_table, dmodk_up_port};

/// Per-(node, dst) deliverability under a failure set.
///
/// `reach[node][dst]` is true iff the node can still deliver a packet to
/// `dst` over live cables (descending when it is an ancestor, else
/// ascending to some viable parent).
pub struct Reachability {
    reach: Vec<Vec<bool>>,
}

impl Reachability {
    /// Computes reachability bottom-up (ancestors) and top-down
    /// (non-ancestors).
    #[allow(clippy::needless_range_loop)] // dst indexes several parallel tables
    pub fn compute(topo: &Topology, failures: &LinkFailures) -> Self {
        let n = topo.num_hosts();
        let total = topo.num_nodes();
        let mut reach = vec![vec![false; n]; total];

        // Hosts deliver to themselves.
        for (h, row) in reach.iter_mut().take(n).enumerate() {
            row[h] = true;
        }

        // Ancestors, level by level upward: a level-l ancestor delivers to
        // dst iff some live parallel cable leads to the (unique) next-lower
        // node on dst's descent path, and that node delivers.
        for level in 1..=topo.height() {
            for sw in topo.level_nodes(level) {
                let node = topo.node(sw);
                let m = topo.spec().m(level - 1);
                for dst in 0..n {
                    if !topo.is_ancestor_of(sw, dst) {
                        continue;
                    }
                    let c = topo.spec().host_digit(dst, level - 1);
                    let viable = (0..topo.spec().p(level - 1)).any(|k| {
                        let r = (c + k * m) as usize;
                        let pp = node.down[r];
                        failures.is_live(pp.link) && reach[pp.peer.index()][dst]
                    });
                    reach[sw.index()][dst] = viable;
                }
            }
        }

        // Non-ancestors, level by level downward: a node reaches dst iff
        // some live up cable leads to a parent that reaches dst. Top-level
        // nodes are ancestors of everything, so start below them.
        for level in (0..topo.height()).rev() {
            for nid in topo.level_nodes(level) {
                let node = topo.node(nid);
                for dst in 0..n {
                    if level > 0 && topo.is_ancestor_of(nid, dst) {
                        continue;
                    }
                    if level == 0 && nid.index() == dst {
                        continue;
                    }
                    let viable = node
                        .up
                        .iter()
                        .any(|pp| failures.is_live(pp.link) && reach[pp.peer.index()][dst]);
                    reach[nid.index()][dst] = viable;
                }
            }
        }

        Self { reach }
    }

    /// Can `node` still deliver to `dst`?
    #[inline]
    pub fn ok(&self, node: NodeId, dst: usize) -> bool {
        self.reach[node.index()][dst]
    }

    /// Host pairs that became unreachable (for operator reports).
    pub fn unreachable_pairs(&self, topo: &Topology) -> Vec<(usize, usize)> {
        let n = topo.num_hosts();
        let mut out = Vec::new();
        for src in 0..n {
            for dst in 0..n {
                if src != dst && !self.reach[src][dst] {
                    out.push((src, dst));
                }
            }
        }
        out
    }

    /// `(node, dst)` entries whose deliverability flipped between two
    /// reachability snapshots. This is the signal incremental repair uses to
    /// find LFT entries whose viable-port sets changed (see `crate::sm`).
    pub fn diff(&self, other: &Reachability) -> Vec<(NodeId, usize)> {
        let mut out = Vec::new();
        for (node, (old_row, new_row)) in self.reach.iter().zip(&other.reach).enumerate() {
            for (dst, (o, nw)) in old_row.iter().zip(new_row).enumerate() {
                if o != nw {
                    out.push((NodeId(node as u32), dst));
                }
            }
        }
        out
    }
}

/// Builds fault-aware D-Mod-K LFTs. Entries for unreachable destinations
/// are left unprogrammed (tracing reports `NoRoute`, as a real SM would).
#[deprecated(
    note = "use the `DModK` routing engine: `DModK.route(topo, failures)` returns a `Result` instead of panicking"
)]
pub fn route_dmodk_ft(topo: &Topology, failures: &LinkFailures) -> RoutingTable {
    ft_table(topo, failures).unwrap_or_else(|e| panic!("{e}"))
}

/// Shared fault-aware table builder behind the [`crate::router::DModK`]
/// engine and the deprecated [`route_dmodk_ft`] wrapper. Inconsistent
/// inputs surface as [`RouteError::Topology`]; a healthy failure set takes
/// the plain closed-form fast path (bit-identical, no reachability pass).
pub(crate) fn ft_table(
    topo: &Topology,
    failures: &LinkFailures,
) -> Result<RoutingTable, RouteError> {
    let _phase = ftree_obs::ObsPhase::global("core::route_dmodk_ft");
    failures.verify_for(topo)?;
    if failures.is_empty() {
        return Ok(dmodk_table(topo));
    }
    let reach = Reachability::compute(topo, failures);
    let mut rt = RoutingTable::empty(topo, ft_algorithm_label(failures));
    let n = topo.num_hosts();
    let spec = topo.spec();

    // Multi-cabled hosts pick the first viable up cable from the eq. 1
    // preference.
    if spec.up_ports(0) > 1 {
        for src in 0..n {
            let host = topo.host(src);
            for dst in 0..n {
                if src == dst {
                    continue;
                }
                if let Some(q) = pick_up(topo, failures, &reach, host, 0, dst) {
                    rt.set(host, dst, PortRef::Up(q));
                }
            }
        }
    }

    for sw in topo.switches() {
        let level = topo.node(sw).level as usize;
        for dst in 0..n {
            if topo.is_ancestor_of(sw, dst) {
                if let Some(r) = pick_down(topo, failures, &reach, sw, level, dst) {
                    rt.set(sw, dst, PortRef::Down(r));
                }
            } else if let Some(q) = pick_up(topo, failures, &reach, sw, level, dst) {
                rt.set(sw, dst, PortRef::Up(q));
            }
        }
    }
    Ok(rt)
}

/// The algorithm label `route_dmodk_ft` stamps on its tables; incremental
/// repair (`crate::sm`) uses the same label so repaired tables are
/// bit-identical to a full recompute.
pub(crate) fn ft_algorithm_label(failures: &LinkFailures) -> String {
    if failures.is_empty() {
        "d-mod-k".to_string()
    } else {
        format!("d-mod-k-ft({} failed)", failures.len())
    }
}

/// First viable up port from the eq. 1 preference. Deviation order: first
/// try the *sibling parallel cables* to the preferred parent (keeps the
/// digit structure intact — minimal HSD perturbation), then cycle through
/// the other parents.
pub(crate) fn pick_up(
    topo: &Topology,
    failures: &LinkFailures,
    reach: &Reachability,
    node: NodeId,
    level: usize,
    dst: usize,
) -> Option<u32> {
    let w = topo.spec().w(level);
    let p = topo.spec().p(level);
    let preferred = dmodk_up_port(topo, level, dst);
    let (b0, k0) = (preferred % w, preferred / w);
    (0..w)
        .flat_map(move |db| (0..p).map(move |dk| ((b0 + db) % w) + ((k0 + dk) % p) * w))
        .find(|&q| {
            let pp = topo.node(node).up[q as usize];
            failures.is_live(pp.link) && reach.ok(pp.peer, dst)
        })
}

/// First viable parallel cable toward dst's child, preferring the mirrored
/// eq. 1 cable.
pub(crate) fn pick_down(
    topo: &Topology,
    failures: &LinkFailures,
    reach: &Reachability,
    node: NodeId,
    level: usize,
    dst: usize,
) -> Option<u32> {
    let spec = topo.spec();
    let m = spec.m(level - 1);
    let p = spec.p(level - 1);
    let c = spec.host_digit(dst, level - 1);
    let preferred = dmodk_down_port(topo, level, dst);
    let preferred_k = (preferred - c) / m;
    (0..p)
        .map(|t| (preferred_k + t) % p)
        .map(|k| c + k * m)
        .find(|&r| {
            let pp = topo.node(node).down[r as usize];
            failures.is_live(pp.link) && reach.ok(pp.peer, dst)
        })
}

/// Exact incremental repair for the first-fit D-Mod-K rules — the
/// [`crate::router::DModK`] engine's [`crate::router::Router::repair`]
/// implementation, shared with the subnet manager.
///
/// A full [`ft_table`] recompute decides entry `(node, dst)` from two
/// inputs only: the liveness of `node`'s candidate cables, and
/// `reach(peer, dst)` for each candidate peer. Marking every `(endpoint,
/// dst)` of each changed cable plus every `(neighbor, dst)` of each
/// reachability flip therefore covers every entry whose inputs changed;
/// re-running `pick_up`/`pick_down` on the marked set yields a table
/// bit-identical to a from-scratch recompute. Returns `(entries
/// recomputed, entries changed)`.
pub(crate) fn incremental_dmodk_repair(
    topo: &Topology,
    failures: &LinkFailures,
    old_reach: &Reachability,
    new_reach: &Reachability,
    changed_links: &[u32],
    table: &mut RoutingTable,
) -> (usize, usize) {
    let n = topo.num_hosts();
    let flips = old_reach.diff(new_reach);

    let mut marked = vec![false; topo.num_nodes() * n];
    // Liveness changes: both endpoints of each changed cable, all dsts.
    for &l in changed_links {
        let link = topo.link(l);
        for dst in 0..n {
            marked[link.child.index() * n + dst] = true;
            marked[link.parent.index() * n + dst] = true;
        }
    }
    // Reachability flips: every port-neighbor consults reach(node, dst).
    for &(node, dst) in &flips {
        let nd = topo.node(node);
        for pp in nd.up.iter().chain(nd.down.iter()) {
            marked[pp.peer.index() * n + dst] = true;
        }
    }

    let multi_host = topo.spec().up_ports(0) > 1;
    let mut recomputed = 0;
    let mut changed = 0;
    for (idx, _) in marked.iter().enumerate().filter(|&(_, &m)| m) {
        let node = NodeId((idx / n) as u32);
        let dst = idx % n;
        let nd = topo.node(node);
        let new = if nd.is_host() {
            if !multi_host || node.index() == dst {
                continue;
            }
            pick_up(topo, failures, new_reach, node, 0, dst).map(PortRef::Up)
        } else {
            let level = nd.level as usize;
            if topo.is_ancestor_of(node, dst) {
                pick_down(topo, failures, new_reach, node, level, dst).map(PortRef::Down)
            } else {
                pick_up(topo, failures, new_reach, node, level, dst).map(PortRef::Up)
            }
        };
        recomputed += 1;
        if table.egress(node, dst) != new {
            changed += 1;
            match new {
                Some(port) => table.set(node, dst, port),
                None => table.clear(node, dst),
            }
        }
    }
    table.algorithm = ft_algorithm_label(failures);
    (recomputed, changed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn healthy_fabric_matches_plain_dmodk() {
        let topo = Topology::build(catalog::nodes_128());
        let plain = dmodk_table(&topo);
        let ft = ft_table(&topo, &LinkFailures::none(&topo)).unwrap();
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                assert_eq!(plain.egress(sw, dst), ft.egress(sw, dst));
            }
        }
    }

    #[test]
    fn single_spine_cable_failure_heals() {
        let topo = Topology::build(catalog::nodes_128());
        let mut failures = LinkFailures::none(&topo);
        // Kill leaf 0's up-port 3.
        let leaf0 = topo.node_at(1, 0).unwrap();
        failures.fail_up_port(&topo, leaf0, 3).unwrap();

        let rt = ft_table(&topo, &failures).unwrap();
        rt.validate(&topo, usize::MAX)
            .expect("all pairs still reachable");
        // Traced paths never cross the dead link.
        let dead = topo.node(leaf0).up[3].link;
        for src in 0..topo.num_hosts() {
            for dst in (0..topo.num_hosts()).step_by(7) {
                let path = rt.trace(&topo, src, dst).unwrap();
                assert!(path.channels.iter().all(|ch| ch.link() != dead));
            }
        }
    }

    #[test]
    fn parallel_cable_failure_uses_sibling_cable() {
        // On the 324-node tree every leaf-spine pair has 2 parallel cables;
        // killing one must not change the parent choice, only the cable.
        let topo = Topology::build(catalog::nodes_324());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_up_port(&topo, leaf0, 0).unwrap(); // cable k=0 to spine 0

        let rt = ft_table(&topo, &failures).unwrap();
        rt.validate(&topo, 20_000).unwrap();
        // Destinations preferring up-port 0 now leave via port 9 (k=1, same
        // spine digit 0 since w2 = 9).
        for dst in 18..324 {
            if dmodk_up_port(&topo, 1, dst) == 0 {
                assert_eq!(rt.egress(leaf0, dst), Some(PortRef::Up(9)));
            }
        }
    }

    #[test]
    fn host_cable_failure_reported_unreachable() {
        let topo = Topology::build(catalog::nodes_128());
        let mut failures = LinkFailures::none(&topo);
        failures.fail(topo.node(topo.host(5)).up[0].link).unwrap();
        let reach = Reachability::compute(&topo, &failures);
        let lost = reach.unreachable_pairs(&topo);
        // Host 5 can reach nobody and nobody can reach host 5.
        assert_eq!(lost.len(), 2 * 127);
        assert!(lost.iter().all(|&(s, d)| s == 5 || d == 5));
    }

    /// A 64-host 3-level RLFT with 2 parallel cables at the top level —
    /// small enough for exhaustive checks, tall enough that spine→mid-level
    /// down-path failures exist.
    fn mini_3level() -> Topology {
        Topology::build(
            ftree_topology::PgftSpec::from_slices(&[4, 4, 4], &[1, 4, 2], &[1, 1, 2]).unwrap(),
        )
    }

    #[test]
    fn down_path_parallel_cable_failure_heals_on_3level() {
        let topo = mini_3level();
        let spine = topo.node_at(3, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        // Kill the k=0 parallel cable from this top spine down to child 0.
        failures.fail_down_port(&topo, spine, 0).unwrap();

        let rt = ft_table(&topo, &failures).unwrap();
        rt.validate(&topo, usize::MAX).expect("sibling cable heals");
        let reach = Reachability::compute(&topo, &failures);
        assert!(reach.unreachable_pairs(&topo).is_empty());

        // Destinations under child 0 whose preferred cable was the dead one
        // now leave via the k=1 sibling (port 0 + m(2) = 4); pick_down keeps
        // the child digit and only rotates the parallel-cable index.
        let m2 = topo.spec().m(2); // 4
        let mut rerouted = 0;
        for dst in 0..16 {
            let preferred = dmodk_down_port(&topo, 3, dst);
            if preferred == 0 {
                assert_eq!(rt.egress(spine, dst), Some(PortRef::Down(m2)));
                rerouted += 1;
            } else {
                assert_eq!(rt.egress(spine, dst), Some(PortRef::Down(preferred)));
            }
        }
        assert!(rerouted > 0, "some dst must have preferred the dead cable");
    }

    #[test]
    fn spine_to_leaf_parallel_cable_failure_heals_on_324() {
        // Down-path mirror of `parallel_cable_failure_uses_sibling_cable`:
        // kill a spine→leaf cable instead of a leaf→spine cable.
        let topo = Topology::build(catalog::nodes_324());
        let spine0 = topo.node_at(2, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_down_port(&topo, spine0, 0).unwrap(); // (c=0, k=0) to leaf 0

        let rt = ft_table(&topo, &failures).unwrap();
        rt.validate(&topo, 20_000).unwrap();
        let reach = Reachability::compute(&topo, &failures);
        assert!(reach.unreachable_pairs(&topo).is_empty());

        // Destinations in leaf 0 preferring the dead cable now use the k=1
        // sibling at port 0 + m(1) = 18.
        let mut rerouted = 0;
        for dst in 0..18 {
            let preferred = dmodk_down_port(&topo, 2, dst);
            if preferred == 0 {
                assert_eq!(rt.egress(spine0, dst), Some(PortRef::Down(18)));
                rerouted += 1;
            } else {
                assert_eq!(rt.egress(spine0, dst), Some(PortRef::Down(preferred)));
            }
        }
        assert!(rerouted > 0);
    }

    #[test]
    fn severed_leaf_reports_exactly_the_crossing_pairs() {
        // Kill every down cable into leaf 0 of the 3-level tree (via the
        // parents' down ports). Hosts 0..4 keep intra-leaf connectivity but
        // lose everything across the severed trunk — in both directions.
        let topo = mini_3level();
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        for pp in &topo.node(leaf0).up {
            failures
                .fail_down_port(&topo, pp.peer, pp.peer_port)
                .unwrap();
        }

        let reach = Reachability::compute(&topo, &failures);
        let lost = reach.unreachable_pairs(&topo);
        let n = topo.num_hosts(); // 64, hosts 0..4 under leaf 0
        assert_eq!(lost.len(), 2 * 4 * (n - 4));
        assert!(lost.iter().all(|&(s, d)| (s < 4) != (d < 4)));

        let rt = ft_table(&topo, &failures).unwrap();
        rt.trace(&topo, 0, 3).expect("intra-leaf traffic survives");
        rt.trace(&topo, 10, 20).expect("unrelated traffic survives");
        assert!(matches!(
            rt.trace(&topo, 0, 10),
            Err(ftree_topology::RouteError::NoRoute { .. })
        ));
        assert!(matches!(
            rt.trace(&topo, 10, 0),
            Err(ftree_topology::RouteError::NoRoute { .. })
        ));
    }

    #[test]
    fn reachability_diff_pinpoints_flipped_entries() {
        let topo = Topology::build(catalog::nodes_128());
        let healthy = Reachability::compute(&topo, &LinkFailures::none(&topo));
        let mut failures = LinkFailures::none(&topo);
        failures.fail(topo.node(topo.host(5)).up[0].link).unwrap();
        let broken = Reachability::compute(&topo, &failures);

        let flips = healthy.diff(&broken);
        assert!(!flips.is_empty());
        // Every flip involves host 5: either the host itself losing its
        // destinations, or some node losing the ability to deliver to 5.
        assert!(flips
            .iter()
            .all(|&(node, dst)| dst == 5 || node == topo.host(5)));
        // Symmetric: diffing the other way yields the same set.
        assert_eq!(broken.diff(&healthy), flips);
        // Self-diff is empty.
        assert!(healthy.diff(&healthy).is_empty());
    }

    #[test]
    fn massive_failure_still_routes_what_it_can() {
        let topo = Topology::build(catalog::nodes_128());
        let mut failures = LinkFailures::none(&topo);
        // Kill every cable into spine 0 (16 leaf up-port-0 cables).
        for leaf in topo.level_nodes(1) {
            failures.fail_up_port(&topo, leaf, 0).unwrap();
        }
        let rt = ft_table(&topo, &failures).unwrap();
        rt.validate(&topo, usize::MAX)
            .expect("remaining spines carry everything");
        // And the dead spine is never used.
        let spine0 = topo.node_at(2, 0).unwrap();
        for src in (0..128).step_by(11) {
            for dst in (0..128).step_by(13) {
                let path = rt.trace(&topo, src, dst).unwrap();
                assert!(path.nodes.iter().all(|&nid| nid != spine0));
            }
        }
    }
}
