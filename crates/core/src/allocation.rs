//! Multi-job allocation with structural isolation.
//!
//! Paper Sec. V.A: *"Many large scale HPC installations are used as utility
//! clusters where several jobs run in parallel"* — and notes that aligned
//! sub-allocations (multiples of `Π w_i` nodes) remain congestion-free.
//! This module turns that remark into an allocator with a provable
//! isolation policy:
//!
//! * **whole-leaf granularity for multi-leaf jobs** — every link below the
//!   top level belongs to exactly one leaf's (or subtree's) traffic, and
//!   top-level down-links are destination-specific (Theorem 2), so jobs
//!   occupying disjoint leaf sets never share a contended link;
//! * **sub-leaf jobs pack inside a single leaf** — their traffic never
//!   climbs above the leaf crossbar, so they are isolated from everything,
//!   including spanning jobs sharing the same leaf.
//!
//! Combined with per-job contention-freedom (D-Mod-K + topology-subset
//! order + position-preserving sequences), concurrently running jobs keep
//! the whole fabric at HSD = 1 even when each job progresses through its
//! collective independently — verified by the `multi_job` example and the
//! isolation tests below.

use std::collections::HashMap;

use ftree_topology::Topology;

/// Why an allocation request failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// Zero ranks requested.
    Empty,
    /// Request exceeds the machine.
    TooLarge {
        /// Ranks requested.
        requested: usize,
        /// Total machine capacity in ranks.
        capacity: usize,
    },
    /// Not enough free capacity of the required granularity.
    Insufficient {
        /// Ranks requested.
        requested: usize,
    },
    /// Unknown job id passed to `release`.
    NoSuchJob(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "cannot allocate zero ranks"),
            Self::TooLarge {
                requested,
                capacity,
            } => {
                write!(
                    f,
                    "requested {requested} ranks but the machine has {capacity}"
                )
            }
            Self::Insufficient { requested } => {
                write!(f, "no isolated placement available for {requested} ranks")
            }
            Self::NoSuchJob(id) => write!(f, "no allocated job with id {id}"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A granted allocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allocation {
    /// Allocator-assigned job id.
    pub id: u64,
    /// End-ports granted, in topology order (feed directly into
    /// [`crate::NodeOrder::topology_subset`]).
    pub ports: Vec<u32>,
    /// True when the job spans multiple leaves (and therefore owns whole
    /// leaves).
    pub spans_leaves: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum LeafUse {
    Free,
    /// Owned in full by one spanning job.
    Whole(u64),
    /// Hosts sub-leaf jobs; per-port owner (None = free port).
    Shared(Vec<Option<u64>>),
}

/// First-fit allocator enforcing the isolation policy.
#[derive(Debug)]
pub struct Allocator {
    hosts_per_leaf: usize,
    leaves: Vec<LeafUse>,
    jobs: HashMap<u64, Allocation>,
    next_id: u64,
}

impl Allocator {
    /// Creates an allocator for the machine.
    pub fn new(topo: &Topology) -> Self {
        let hosts_per_leaf = topo.spec().m(0) as usize;
        let leaves = topo.num_hosts() / hosts_per_leaf;
        Self {
            hosts_per_leaf,
            leaves: vec![LeafUse::Free; leaves],
            jobs: HashMap::new(),
            next_id: 1,
        }
    }

    /// Number of completely free leaves.
    pub fn free_leaves(&self) -> usize {
        self.leaves.iter().filter(|l| **l == LeafUse::Free).count()
    }

    /// Total free ports (whole-free leaves plus gaps in shared leaves).
    pub fn free_ports(&self) -> usize {
        self.leaves
            .iter()
            .map(|l| match l {
                LeafUse::Free => self.hosts_per_leaf,
                LeafUse::Whole(_) => 0,
                LeafUse::Shared(slots) => slots.iter().filter(|s| s.is_none()).count(),
            })
            .sum()
    }

    /// Currently allocated jobs.
    pub fn jobs(&self) -> impl Iterator<Item = &Allocation> {
        self.jobs.values()
    }

    /// Allocates `ranks` end-ports under the isolation policy.
    ///
    /// Multi-leaf requests are rounded up to whole leaves (internal
    /// fragmentation, like the paper's 324-node multiples); sub-leaf
    /// requests pack into a shared leaf.
    pub fn allocate(&mut self, ranks: usize) -> Result<Allocation, AllocError> {
        if ranks == 0 {
            return Err(AllocError::Empty);
        }
        let capacity = self.leaves.len() * self.hosts_per_leaf;
        if ranks > capacity {
            return Err(AllocError::TooLarge {
                requested: ranks,
                capacity,
            });
        }
        let id = self.next_id;

        let alloc = if ranks < self.hosts_per_leaf {
            // Sub-leaf: first shared leaf with room, else open a free leaf.
            let leaf = self
                .leaves
                .iter()
                .position(|l| match l {
                    LeafUse::Shared(slots) => slots.iter().filter(|s| s.is_none()).count() >= ranks,
                    _ => false,
                })
                .or_else(|| self.leaves.iter().position(|l| *l == LeafUse::Free))
                .ok_or(AllocError::Insufficient { requested: ranks })?;
            if self.leaves[leaf] == LeafUse::Free {
                self.leaves[leaf] = LeafUse::Shared(vec![None; self.hosts_per_leaf]);
            }
            let LeafUse::Shared(slots) = &mut self.leaves[leaf] else {
                unreachable!()
            };
            let mut ports = Vec::with_capacity(ranks);
            for (slot_idx, slot) in slots.iter_mut().enumerate() {
                if ports.len() == ranks {
                    break;
                }
                if slot.is_none() {
                    *slot = Some(id);
                    ports.push((leaf * self.hosts_per_leaf + slot_idx) as u32);
                }
            }
            debug_assert_eq!(ports.len(), ranks);
            Allocation {
                id,
                ports,
                spans_leaves: false,
            }
        } else {
            // Spanning: whole leaves, first fit, rounded up.
            let needed = ranks.div_ceil(self.hosts_per_leaf);
            let free: Vec<usize> = self
                .leaves
                .iter()
                .enumerate()
                .filter(|(_, l)| **l == LeafUse::Free)
                .map(|(i, _)| i)
                .take(needed)
                .collect();
            if free.len() < needed {
                return Err(AllocError::Insufficient { requested: ranks });
            }
            let mut ports = Vec::with_capacity(needed * self.hosts_per_leaf);
            for leaf in free {
                self.leaves[leaf] = LeafUse::Whole(id);
                ports.extend(
                    (leaf * self.hosts_per_leaf..(leaf + 1) * self.hosts_per_leaf)
                        .map(|p| p as u32),
                );
            }
            Allocation {
                id,
                ports,
                spans_leaves: true,
            }
        };

        self.next_id += 1;
        self.jobs.insert(id, alloc.clone());
        Ok(alloc)
    }

    /// Releases a job's ports.
    pub fn release(&mut self, id: u64) -> Result<(), AllocError> {
        let alloc = self.jobs.remove(&id).ok_or(AllocError::NoSuchJob(id))?;
        if alloc.spans_leaves {
            for leaf in self.leaves.iter_mut() {
                if *leaf == LeafUse::Whole(id) {
                    *leaf = LeafUse::Free;
                }
            }
        } else {
            let leaf = alloc.ports[0] as usize / self.hosts_per_leaf;
            if let LeafUse::Shared(slots) = &mut self.leaves[leaf] {
                for slot in slots.iter_mut() {
                    if *slot == Some(id) {
                        *slot = None;
                    }
                }
                if slots.iter().all(|s| s.is_none()) {
                    self.leaves[leaf] = LeafUse::Free;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    fn allocator() -> Allocator {
        Allocator::new(&Topology::build(catalog::nodes_128()))
    }

    #[test]
    fn spanning_jobs_get_disjoint_whole_leaves() {
        let mut a = allocator();
        let j1 = a.allocate(24).unwrap(); // 3 leaves of 8
        let j2 = a.allocate(16).unwrap(); // 2 leaves
        assert!(j1.spans_leaves && j2.spans_leaves);
        assert_eq!(j1.ports.len(), 24);
        assert_eq!(j2.ports.len(), 16);
        assert!(j1.ports.iter().all(|p| !j2.ports.contains(p)));
        // Whole leaves: every allocated leaf fully owned.
        assert_eq!(a.free_leaves(), 16 - 3 - 2);
    }

    #[test]
    fn rounding_up_to_whole_leaves() {
        let mut a = allocator();
        let j = a.allocate(20).unwrap(); // 2.5 leaves -> 3 leaves = 24 ports
        assert_eq!(j.ports.len(), 24);
    }

    #[test]
    fn sub_leaf_jobs_share_one_leaf() {
        let mut a = allocator();
        let j1 = a.allocate(3).unwrap();
        let j2 = a.allocate(4).unwrap();
        assert!(!j1.spans_leaves && !j2.spans_leaves);
        let leaf1 = j1.ports[0] / 8;
        let leaf2 = j2.ports[0] / 8;
        assert_eq!(leaf1, leaf2, "both fit one shared leaf");
        assert!(j1.ports.iter().all(|p| !j2.ports.contains(p)));
        assert_eq!(a.free_leaves(), 15);
    }

    #[test]
    fn release_returns_capacity() {
        let mut a = allocator();
        let j1 = a.allocate(64).unwrap();
        assert_eq!(a.free_leaves(), 8);
        a.release(j1.id).unwrap();
        assert_eq!(a.free_leaves(), 16);
        assert_eq!(a.free_ports(), 128);
        assert!(matches!(a.release(j1.id), Err(AllocError::NoSuchJob(_))));
    }

    #[test]
    fn exhaustion_reported() {
        let mut a = allocator();
        a.allocate(128).unwrap();
        assert!(matches!(
            a.allocate(8),
            Err(AllocError::Insufficient { .. })
        ));
        assert!(matches!(a.allocate(129), Err(AllocError::TooLarge { .. })));
        assert!(matches!(a.allocate(0), Err(AllocError::Empty)));
    }

    #[test]
    fn shared_leaf_reclaimed_when_empty() {
        let mut a = allocator();
        let j1 = a.allocate(5).unwrap();
        let j2 = a.allocate(2).unwrap();
        a.release(j1.id).unwrap();
        assert_eq!(a.free_leaves(), 15, "leaf still shared by j2");
        a.release(j2.id).unwrap();
        assert_eq!(a.free_leaves(), 16);
    }

    #[test]
    fn fragmentation_fills_gaps_with_sub_leaf_jobs() {
        let mut a = allocator();
        let _big = a.allocate(120).unwrap(); // 15 leaves
        let small = a.allocate(6).unwrap(); // fits the last leaf
        assert_eq!(small.ports.len(), 6);
        let tiny = a.allocate(2).unwrap(); // shares the same leaf
        assert_eq!(small.ports[0] / 8, tiny.ports[0] / 8);
        assert!(matches!(
            a.allocate(8),
            Err(AllocError::Insufficient { .. })
        ));
    }
}
