//! Subnet-manager sweeps: living through a fault/recovery timeline with
//! incremental LFT repair.
//!
//! A real InfiniBand subnet manager does not recompute the whole fabric on
//! every cable event. It discovers what changed, patches exactly the
//! forwarding entries whose routes crossed the changed cables, and pushes
//! the delta to the switches. [`SubnetManager`] reproduces that loop on top
//! of a pluggable [`Router`] engine (default [`DModK`]):
//!
//! 1. a [`FaultSchedule`] scripts timed link failures and recoveries,
//! 2. each [`SubnetManager::sweep`] applies all due events to its
//!    [`LinkFailures`] set,
//! 3. **incremental repair** (via [`Router::repair`], when the engine
//!    supports it — see `crate::fault::incremental_dmodk_repair` for why
//!    the D-Mod-K repair is exact) recomputes only the `(node, dst)`
//!    entries whose viable-port set may have changed; engines without a
//!    repair hook are fully re-routed, and
//! 4. a [`SweepReport`] records what the sweep saw and did (perturbed
//!    entries, unreachable pairs, event-to-sweep lag).
//!
//! Either way the active table is **bit-identical** to a from-scratch
//! [`Router::route`] under the applied failure set. The oracle test in
//! `tests/sm_oracle.rs` checks this for every catalog topology.

use serde::{Deserialize, Serialize};

use ftree_topology::{
    FaultSchedule, LinkEventKind, LinkFailures, RouteError, RoutingTable, Topology, TopologyError,
};

use crate::fault::Reachability;
use crate::router::{DModK, Router};

/// What one subnet-manager sweep observed and repaired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Sweep ordinal (0 for the first sweep).
    pub sweep: usize,
    /// Simulation time of the sweep, in picoseconds.
    pub time: u64,
    /// Schedule events applied by this sweep (including no-op duplicates).
    pub events_applied: usize,
    /// Links whose liveness changed **net** across the sweep. A link that
    /// failed and recovered inside one sweep window (a coalesced flap) is
    /// not counted and triggers no repair.
    pub links_changed: usize,
    /// Links touched by due events whose liveness ended the sweep where it
    /// started — flap events the sweep coalesced away instead of repairing.
    #[serde(default)]
    pub events_coalesced: usize,
    /// Failed links after the sweep.
    pub failed_links: usize,
    /// `(node, dst)` entries recomputed by incremental repair.
    pub entries_recomputed: usize,
    /// Recomputed entries whose egress actually changed (perturbation).
    pub entries_changed: usize,
    /// Ordered host pairs that cannot communicate after the sweep.
    pub unreachable_pairs: usize,
    /// [`LinkFailures::version`] after the sweep.
    pub failures_version: u64,
    /// Sweep lag: sweep time minus the earliest applied event time — how
    /// long the oldest fault sat unrepaired (the time-to-heal half that is
    /// the SM's fault, as opposed to retransmit latency).
    pub oldest_event_age: u64,
}

/// Post-sweep validation hook: invoked with the topology, the repaired
/// routing table, and the failure set it was repaired under. Installed via
/// [`SubnetManager::set_sweep_check`]; the canonical implementation is the
/// routing invariant checker in `ftree-analysis`, wrapped in a closure that
/// panics on violation — a debug-assert for the control plane.
pub type SweepCheck = Box<dyn Fn(&Topology, &RoutingTable, &LinkFailures) + Send + Sync>;

/// A subnet manager living through a [`FaultSchedule`], keeping a
/// [`Router`]-built [`RoutingTable`] continuously repaired.
pub struct SubnetManager {
    engine: Box<dyn Router>,
    schedule: FaultSchedule,
    cursor: usize,
    failures: LinkFailures,
    reach: Reachability,
    table: RoutingTable,
    reports: Vec<SweepReport>,
    check: Option<SweepCheck>,
}

impl SubnetManager {
    /// Starts a manager on a healthy fabric with the default [`DModK`]
    /// engine. The initial table is bit-identical to plain D-Mod-K.
    pub fn new(topo: &Topology, schedule: FaultSchedule) -> Result<Self, TopologyError> {
        Self::with_engine(topo, schedule, Box::new(DModK))
    }

    /// Starts a manager driving an arbitrary routing engine. Engines that
    /// implement [`Router::repair`] are patched incrementally on each
    /// sweep; the rest are fully re-routed whenever a link changes.
    pub fn with_engine(
        topo: &Topology,
        schedule: FaultSchedule,
        engine: Box<dyn Router>,
    ) -> Result<Self, TopologyError> {
        schedule.validate(topo)?;
        let failures = LinkFailures::none(topo);
        let reach = Reachability::compute(topo, &failures);
        let table = match engine.route(topo, &failures) {
            Ok(t) => t,
            Err(RouteError::Topology(e)) => return Err(e),
            Err(e) => unreachable!("healthy routing failed structurally: {e}"),
        };
        Ok(Self {
            engine,
            schedule,
            cursor: 0,
            failures,
            reach,
            table,
            reports: Vec::new(),
            check: None,
        })
    }

    /// Installs a [`SweepCheck`] that runs after every sweep which applied
    /// events — a debug-assert-style knob: absent by default, and when
    /// present it sees exactly the table/failure state traffic will route
    /// by. Replaces any previously installed check.
    pub fn set_sweep_check(&mut self, check: SweepCheck) {
        self.check = Some(check);
    }

    /// Name of the routing engine driving this manager.
    pub fn engine_name(&self) -> String {
        self.engine.name()
    }

    /// The active routing table (always consistent with the applied events).
    pub fn table(&self) -> &RoutingTable {
        &self.table
    }

    /// The current failure set.
    pub fn failures(&self) -> &LinkFailures {
        &self.failures
    }

    /// The current reachability snapshot.
    pub fn reachability(&self) -> &Reachability {
        &self.reach
    }

    /// Reports of all sweeps performed so far.
    pub fn reports(&self) -> &[SweepReport] {
        &self.reports
    }

    /// Time of the next unapplied schedule event, or `None` once the
    /// schedule is fully consumed.
    pub fn next_event_time(&self) -> Option<u64> {
        self.schedule.events().get(self.cursor).map(|e| e.time)
    }

    /// True once every scheduled event has been applied.
    pub fn is_settled(&self) -> bool {
        self.cursor == self.schedule.len()
    }

    /// Runs one sweep at time `now`: applies every due event, incrementally
    /// repairs the routing table, and reports. A sweep with no due events
    /// still produces a (cheap) health report.
    pub fn sweep(&mut self, topo: &Topology, now: u64) -> SweepReport {
        // Wall-clock span (also feeds the "sm::sweep" phase aggregate on
        // drop); any "sm::repair" child below nests under it via the
        // thread-local span stack.
        let mut sweep_span = ftree_obs::wall_span_global("sm::sweep");
        sweep_span.attr("sim_time", now);
        self.failures
            .verify_for(topo)
            .expect("subnet manager swept with a different topology");

        let mut events_applied = 0;
        let mut oldest: Option<u64> = None;
        // Pre-sweep liveness of every link touched by a due event, in touch
        // order. Repairs are driven by the *net* liveness change across the
        // sweep, so a flap that fails and recovers inside one window
        // coalesces to nothing instead of a redundant recompute.
        let mut touched: Vec<(u32, bool)> = Vec::new();
        while let Some(ev) = self.schedule.events().get(self.cursor) {
            if ev.time > now {
                break;
            }
            if !touched.iter().any(|&(l, _)| l == ev.link) {
                touched.push((ev.link, self.failures.is_live(ev.link)));
            }
            match ev.kind {
                LinkEventKind::Fail => self.failures.fail(ev.link),
                LinkEventKind::Recover => self.failures.recover(ev.link),
            }
            .expect("schedule validated at construction");
            oldest = Some(oldest.map_or(ev.time, |o| o.min(ev.time)));
            events_applied += 1;
            self.cursor += 1;
        }
        let changed_links: Vec<u32> = touched
            .iter()
            .filter(|&&(l, was_live)| self.failures.is_live(l) != was_live)
            .map(|&(l, _)| l)
            .collect();
        let events_coalesced = touched.len() - changed_links.len();

        let (entries_recomputed, entries_changed) = if changed_links.is_empty() {
            (0, 0)
        } else {
            let mut repair_span = ftree_obs::wall_span_global("sm::repair");
            repair_span.attr("links_changed", changed_links.len() as u64);
            let new_reach = Reachability::compute(topo, &self.failures);
            let counts = match self.engine.repair(
                topo,
                &self.failures,
                &self.reach,
                &new_reach,
                &changed_links,
                &mut self.table,
            ) {
                Some(counts) => counts,
                None => {
                    // Engine without incremental repair: full recompute,
                    // reporting every entry as recomputed and counting the
                    // ones that actually moved.
                    let new_table = self
                        .engine
                        .route(topo, &self.failures)
                        .expect("failure set verified at sweep entry");
                    let n = topo.num_hosts();
                    let mut changed = 0;
                    let mut recomputed = 0;
                    let hosts_programmed = topo.spec().up_ports(0) > 1;
                    for node in topo
                        .switches()
                        .chain((0..n).filter(|_| hosts_programmed).map(|h| topo.host(h)))
                    {
                        for dst in 0..n {
                            recomputed += 1;
                            if self.table.egress(node, dst) != new_table.egress(node, dst) {
                                changed += 1;
                            }
                        }
                    }
                    self.table = new_table;
                    (recomputed, changed)
                }
            };
            self.reach = new_reach;
            repair_span.attr("entries_recomputed", counts.0 as u64);
            repair_span.attr("entries_changed", counts.1 as u64);
            counts
        };

        let report = SweepReport {
            sweep: self.reports.len(),
            time: now,
            events_applied,
            links_changed: changed_links.len(),
            events_coalesced,
            failed_links: self.failures.len(),
            entries_recomputed,
            entries_changed,
            unreachable_pairs: self.reach.unreachable_pairs(topo).len(),
            failures_version: self.failures.version(),
            oldest_event_age: oldest.map_or(0, |o| now.saturating_sub(o)),
        };
        if let Some(rec) = ftree_obs::global() {
            rec.counter("sm.sweeps").inc();
            rec.counter("sm.events_applied").add(events_applied as u64);
            rec.counter("sm.links_changed")
                .add(report.links_changed as u64);
            rec.counter("sm.lft_entries_recomputed")
                .add(entries_recomputed as u64);
            rec.counter("sm.lft_entries_changed")
                .add(entries_changed as u64);
            rec.gauge("sm.failed_links").set(report.failed_links as i64);
        }
        sweep_span.attr("events_applied", events_applied as u64);
        sweep_span.attr("links_changed", report.links_changed as u64);
        sweep_span.attr("entries_changed", entries_changed as u64);
        self.reports.push(report.clone());
        if events_applied > 0 {
            if let Some(check) = &self.check {
                check(topo, &self.table, &self.failures);
            }
        }
        report
    }

    /// Sweeps once per distinct event time until the schedule is consumed;
    /// returns the reports. Convenience for offline experiments and tests.
    pub fn sweep_all(&mut self, topo: &Topology) -> Vec<SweepReport> {
        let mut out = Vec::new();
        while let Some(t) = self.next_event_time() {
            out.push(self.sweep(topo, t));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::LinkEvent;

    /// Full bit-identity: every entry and the algorithm label.
    fn assert_tables_identical(topo: &Topology, a: &RoutingTable, b: &RoutingTable) {
        assert_eq!(a.algorithm, b.algorithm);
        for sw in topo.switches() {
            for dst in 0..topo.num_hosts() {
                assert_eq!(
                    a.egress(sw, dst),
                    b.egress(sw, dst),
                    "entry ({sw:?}, {dst}) diverges"
                );
            }
        }
        for h in 0..topo.num_hosts() {
            for dst in 0..topo.num_hosts() {
                assert_eq!(a.egress(topo.host(h), dst), b.egress(topo.host(h), dst));
            }
        }
    }

    #[test]
    fn healthy_manager_matches_plain_dmodk() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let mut sm = SubnetManager::new(&topo, FaultSchedule::empty()).unwrap();
        assert_tables_identical(&topo, sm.table(), &DModK.route_healthy(&topo));
        assert!(sm.is_settled());
        let report = sm.sweep(&topo, 1_000);
        assert_eq!(report.events_applied, 0);
        assert_eq!(report.entries_recomputed, 0);
        assert_eq!(report.unreachable_pairs, 0);
    }

    #[test]
    fn incremental_repair_matches_full_recompute() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let leaf2 = topo.node_at(1, 2).unwrap();
        let l0 = topo.node(leaf0).up[1].link;
        let l1 = topo.node(leaf2).up[2].link;
        let sched = FaultSchedule::new(vec![
            LinkEvent {
                time: 100,
                link: l0,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 200,
                link: l1,
                kind: LinkEventKind::Fail,
            },
        ]);
        let mut sm = SubnetManager::new(&topo, sched).unwrap();

        let r1 = sm.sweep(&topo, 100);
        assert_eq!(r1.links_changed, 1);
        assert!(r1.entries_changed > 0);
        let mut expect = LinkFailures::none(&topo);
        expect.fail(l0).unwrap();
        assert_tables_identical(&topo, sm.table(), &DModK.route(&topo, &expect).unwrap());

        let r2 = sm.sweep(&topo, 200);
        assert_eq!(r2.failed_links, 2);
        expect.fail(l1).unwrap();
        assert_tables_identical(&topo, sm.table(), &DModK.route(&topo, &expect).unwrap());
        assert!(sm.is_settled());
    }

    #[test]
    fn fail_then_recover_restores_plain_dmodk_exactly() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf1 = topo.node_at(1, 1).unwrap();
        let link = topo.node(leaf1).up[0].link;
        let sched = FaultSchedule::new(vec![
            LinkEvent {
                time: 10,
                link,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 900,
                link,
                kind: LinkEventKind::Recover,
            },
        ]);
        let mut sm = SubnetManager::new(&topo, sched).unwrap();
        let reports = sm.sweep_all(&topo);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[1].failed_links, 0);
        assert_tables_identical(&topo, sm.table(), &DModK.route_healthy(&topo));
        assert_eq!(sm.table().algorithm, "d-mod-k");
    }

    #[test]
    fn one_sweep_can_absorb_many_events() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let l0 = topo.node(leaf0).up[0].link;
        let l1 = topo.node(leaf0).up[3].link;
        let sched = FaultSchedule::new(vec![
            LinkEvent {
                time: 10,
                link: l0,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 20,
                link: l0,
                kind: LinkEventKind::Recover,
            },
            LinkEvent {
                time: 30,
                link: l1,
                kind: LinkEventKind::Fail,
            },
        ]);
        let mut sm = SubnetManager::new(&topo, sched).unwrap();
        assert_eq!(sm.next_event_time(), Some(10));
        // The SM was asleep until t=50: one sweep applies all three events.
        let report = sm.sweep(&topo, 50);
        assert_eq!(report.events_applied, 3);
        assert_eq!(report.failed_links, 1);
        assert_eq!(report.oldest_event_age, 40);
        assert!(sm.is_settled());

        let mut expect = LinkFailures::none(&topo);
        expect.fail(l1).unwrap();
        assert_tables_identical(&topo, sm.table(), &DModK.route(&topo, &expect).unwrap());
    }

    #[test]
    fn zero_dwell_flap_is_bit_identical_to_noop() {
        // A fail+recover pair at the same instant (`FaultSchedule::new`
        // orders Fail first) must coalesce: no repair, and a table
        // bit-identical to a manager that saw no events at all.
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let link = topo.node(leaf0).up[2].link;
        let sched = FaultSchedule::new(vec![
            LinkEvent {
                time: 100,
                link,
                kind: LinkEventKind::Recover,
            },
            LinkEvent {
                time: 100,
                link,
                kind: LinkEventKind::Fail,
            },
        ]);
        let mut sm = SubnetManager::new(&topo, sched).unwrap();
        let report = sm.sweep(&topo, 150);
        assert_eq!(report.events_applied, 2);
        assert_eq!(report.links_changed, 0, "flap must coalesce");
        assert_eq!(report.events_coalesced, 1);
        assert_eq!(report.entries_recomputed, 0);
        assert_eq!(report.failed_links, 0);
        assert!(sm.is_settled());

        let mut idle = SubnetManager::new(&topo, FaultSchedule::empty()).unwrap();
        idle.sweep(&topo, 150);
        assert_tables_identical(&topo, sm.table(), idle.table());
        assert_eq!(
            sm.failures().fingerprint(),
            idle.failures().fingerprint(),
            "failure sets diverge"
        );
    }

    #[test]
    fn coalesced_flap_skips_repair_but_net_change_repairs() {
        // One link flaps (fail@10, recover@20), another fails for good
        // (@30): a single sweep at t=50 must repair only the second.
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let flappy = topo.node(leaf0).up[0].link;
        let dead = topo.node(leaf0).up[3].link;
        let sched = FaultSchedule::new(vec![
            LinkEvent {
                time: 10,
                link: flappy,
                kind: LinkEventKind::Fail,
            },
            LinkEvent {
                time: 20,
                link: flappy,
                kind: LinkEventKind::Recover,
            },
            LinkEvent {
                time: 30,
                link: dead,
                kind: LinkEventKind::Fail,
            },
        ]);
        let mut sm = SubnetManager::new(&topo, sched).unwrap();
        let report = sm.sweep(&topo, 50);
        assert_eq!(report.events_applied, 3);
        assert_eq!(report.links_changed, 1);
        assert_eq!(report.events_coalesced, 1);
        let mut expect = LinkFailures::none(&topo);
        expect.fail(dead).unwrap();
        assert_tables_identical(&topo, sm.table(), &DModK.route(&topo, &expect).unwrap());
    }

    #[test]
    fn sweep_check_runs_after_event_sweeps() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::sync::Arc;
        let topo = Topology::build(catalog::fig4_pgft_16());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let link = topo.node(leaf0).up[1].link;
        let sched = FaultSchedule::new(vec![LinkEvent {
            time: 10,
            link,
            kind: LinkEventKind::Fail,
        }]);
        let mut sm = SubnetManager::new(&topo, sched).unwrap();
        let calls = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&calls);
        sm.set_sweep_check(Box::new(move |topo, table, failures| {
            assert_eq!(failures.len(), 1, "check sees the post-sweep state");
            assert!(table.egress(topo.host(0), 1).is_some());
            seen.fetch_add(1, Ordering::SeqCst);
        }));
        sm.sweep(&topo, 5); // no due events: check not invoked
        assert_eq!(calls.load(Ordering::SeqCst), 0);
        sm.sweep(&topo, 50);
        assert_eq!(calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn schedule_for_wrong_topology_rejected() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let sched = FaultSchedule::new(vec![LinkEvent {
            time: 0,
            link: topo.num_links() as u32 + 1,
            kind: LinkEventKind::Fail,
        }]);
        assert!(SubnetManager::new(&topo, sched).is_err());
    }
}
