//! MPI node ordering — the rank → end-port assignment.
//!
//! The paper's central practical lever: the *same* routing and the *same*
//! collective produce contention-free or badly congested traffic depending
//! only on how MPI ranks are laid out on the cluster's end-ports (Figure 1).
//!
//! * [`NodeOrder::topology`] — rank `r` on end-port `r` (RLFT index order);
//!   with D-Mod-K routing this is the contention-free assignment of
//!   Theorems 1–3.
//! * [`NodeOrder::topology_subset`] — the same for a partially-populated
//!   job: ranks follow the topology order of the populated ports
//!   (Table 3's "Cont.−X" cases).
//! * [`NodeOrder::random`] — seeded random placement, the paper's
//!   evaluation baseline (Figures 2 and 3).
//! * [`NodeOrder::adversarial_ring`] — the Sec. II worst case: every leaf
//!   switch's Ring-stage flows converge on a single up-going port,
//!   collapsing bandwidth by a factor of ~K.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use ftree_collectives::Stage;
use ftree_topology::Topology;

/// An assignment of MPI ranks to end-ports (host indices).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeOrder {
    /// `rank_to_port[r]` = host index hosting rank `r`.
    rank_to_port: Vec<u32>,
    /// Descriptive label for reports.
    pub label: String,
}

impl NodeOrder {
    /// Builds an order from an explicit rank → port map.
    pub fn from_map(rank_to_port: Vec<u32>, label: impl Into<String>) -> Self {
        #[cfg(debug_assertions)]
        {
            let mut sorted = rank_to_port.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), rank_to_port.len(), "ports must be distinct");
        }
        Self {
            rank_to_port,
            label: label.into(),
        }
    }

    /// Topology order over the full machine: rank `r` ↦ port `r`.
    pub fn topology(topo: &Topology) -> Self {
        Self::from_map((0..topo.num_hosts() as u32).collect(), "topology")
    }

    /// Topology order over a populated subset of ports (partial job).
    /// Ranks are assigned in ascending port order.
    pub fn topology_subset(mut ports: Vec<u32>) -> Self {
        ports.sort_unstable();
        Self::from_map(ports, "topology-subset")
    }

    /// Seeded random placement over the full machine.
    pub fn random(topo: &Topology, seed: u64) -> Self {
        let mut ports: Vec<u32> = (0..topo.num_hosts() as u32).collect();
        ports.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        Self::from_map(ports, format!("random(seed={seed})"))
    }

    /// Seeded random placement over a port subset (partial job).
    pub fn random_subset(mut ports: Vec<u32>, seed: u64) -> Self {
        ports.shuffle(&mut ChaCha8Rng::seed_from_u64(seed));
        Self::from_map(ports, format!("random-subset(seed={seed})"))
    }

    /// Adversarial order for the Ring CPS under D-Mod-K routing
    /// (paper Sec. II).
    ///
    /// Construction: the port-level permutation
    /// `target(leaf ℓ, offset o) = port[K·((ℓ+1+o) mod L) + (ℓ mod m₁)]`
    /// sends all of leaf `ℓ`'s flows to destinations that are congruent
    /// modulo the leaf's up-port count, so D-Mod-K funnels them into one
    /// up-going port. Laying ranks along the permutation's cycles makes the
    /// Ring CPS (`rank i → rank i+1`) realize precisely these flows (up to
    /// one benign flow per cycle boundary).
    ///
    /// Requires the leaf count to be a multiple of the hosts-per-leaf count
    /// (true for all the paper's topologies); panics otherwise.
    pub fn adversarial_ring(topo: &Topology) -> Self {
        let spec = topo.spec();
        let m1 = spec.m(0) as usize; // hosts per leaf
        let n = topo.num_hosts();
        let leaves = n / m1;
        assert!(
            leaves.is_multiple_of(m1),
            "adversarial construction needs leaf count ({leaves}) divisible by \
             hosts-per-leaf ({m1})"
        );

        let target = |port: usize| -> usize {
            let leaf = port / m1;
            let off = port % m1;
            let dst_leaf = (leaf + 1 + off) % leaves;
            dst_leaf * m1 + (leaf % m1)
        };

        // Lay ranks along the cycles of the permutation.
        let mut rank_to_port = Vec::with_capacity(n);
        let mut visited = vec![false; n];
        for start in 0..n {
            if visited[start] {
                continue;
            }
            let mut at = start;
            while !visited[at] {
                visited[at] = true;
                rank_to_port.push(at as u32);
                at = target(at);
            }
        }
        Self::from_map(rank_to_port, "adversarial-ring")
    }

    /// Number of ranks in the job.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.rank_to_port.len()
    }

    /// End-port hosting `rank`.
    #[inline]
    pub fn port_of(&self, rank: u32) -> u32 {
        self.rank_to_port[rank as usize]
    }

    /// The full rank → port map.
    #[inline]
    pub fn map(&self) -> &[u32] {
        &self.rank_to_port
    }

    /// Translates a rank-space CPS stage into port-space flows
    /// `(src_port, dst_port)`, dropping self-flows.
    pub fn port_flows(&self, stage: &Stage) -> Vec<(u32, u32)> {
        stage
            .pairs
            .iter()
            .filter(|&&(s, d)| s != d)
            .map(|&(s, d)| (self.port_of(s), self.port_of(d)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_collectives::{Cps, PermutationSequence};
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn topology_order_is_identity() {
        let topo = Topology::build(catalog::nodes_128());
        let ord = NodeOrder::topology(&topo);
        assert_eq!(ord.num_ranks(), 128);
        for r in 0..128u32 {
            assert_eq!(ord.port_of(r), r);
        }
    }

    #[test]
    fn random_order_is_permutation_and_seeded() {
        let topo = Topology::build(catalog::nodes_128());
        let a = NodeOrder::random(&topo, 3);
        let b = NodeOrder::random(&topo, 3);
        let c = NodeOrder::random(&topo, 4);
        assert_eq!(a, b);
        assert_ne!(a.map(), c.map());
        let mut ports = a.map().to_vec();
        ports.sort_unstable();
        assert_eq!(ports, (0..128).collect::<Vec<u32>>());
    }

    #[test]
    fn subset_order_sorts_ports() {
        let ord = NodeOrder::topology_subset(vec![9, 3, 27, 4]);
        assert_eq!(ord.map(), &[3, 4, 9, 27]);
    }

    #[test]
    fn port_flows_translate_and_drop_self() {
        let ord = NodeOrder::from_map(vec![10, 11, 12, 13], "test");
        let stage = Stage::new(vec![(0, 1), (1, 2), (2, 2), (3, 0)]);
        assert_eq!(ord.port_flows(&stage), vec![(10, 11), (11, 12), (13, 10)]);
    }

    #[test]
    fn adversarial_targets_congruent_destinations() {
        // Every leaf's ring successors (ignoring cycle boundaries) must be
        // congruent mod m1 and live on other leaves: that is what funnels
        // all of the leaf's flows into one D-Mod-K up-port.
        let topo = Topology::build(catalog::nodes_1944());
        let ord = NodeOrder::adversarial_ring(&topo);
        let n = topo.num_hosts() as u32;
        let m1 = topo.spec().m(0);
        let ring = Cps::Ring.stage(n, 0);
        let flows = ord.port_flows(&ring);
        // For each leaf, collect destination residues of flows that leave it.
        let mut per_leaf: Vec<Vec<u32>> = vec![Vec::new(); n as usize / m1 as usize];
        for (s, d) in flows {
            if s / m1 != d / m1 {
                per_leaf[(s / m1) as usize].push(d % m1);
            }
        }
        let mut single_residue_leaves = 0;
        for residues in &per_leaf {
            let mut r = residues.clone();
            r.sort_unstable();
            r.dedup();
            if r.len() == 1 {
                single_residue_leaves += 1;
            }
        }
        // Each permutation cycle boundary contributes one stray flow that
        // may spoil a leaf; the construction on the 1944-node tree has a few
        // dozen cycles, so require at least 80% of leaves to be perfectly
        // funneled (the HSD analysis in ftree-analysis checks the resulting
        // ~K-fold oversubscription quantitatively).
        assert!(
            single_residue_leaves * 10 >= per_leaf.len() * 8,
            "only {single_residue_leaves}/{} leaves funneled",
            per_leaf.len()
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "ports must be distinct")]
    fn duplicate_ports_rejected_in_debug() {
        let _ = NodeOrder::from_map(vec![1, 1], "bad");
    }
}
