//! Pluggable routing engines: one trait, many routers, one quality axis.
//!
//! The paper proves its contention-free guarantee for exactly one router —
//! closed-form D-Mod-K on a healthy RLFT — but evaluating that claim (and
//! surviving real fabrics) requires *comparing* engines under the same
//! interface. [`Router`] is that interface: every engine consumes a
//! topology plus a [`LinkFailures`] state and produces an ordinary
//! destination-indexed [`RoutingTable`], so analysis, simulation and the
//! subnet manager treat all routings identically.
//!
//! Engines:
//!
//! * [`DModK`] — the paper's eq. 1 closed form; on degraded fabrics it
//!   falls back to the deviation-minimizing *first-fit* rule of
//!   [`crate::fault`] (first viable port in sibling-cable-first cyclic
//!   order). Supports exact incremental repair (see [`Router::repair`]).
//! * [`Dmodc`] — fault-resilient closed-form routing in the style of
//!   Gliksberg et al. ("High-Quality Fault Resiliency in Fat Trees"):
//!   bit-identical to D-Mod-K while healthy, but on degraded fabrics each
//!   node rebalances its *displaced* destinations across surviving viable
//!   ports by a least-loaded criterion, minimizing the maximal per-link
//!   destination load instead of piling displaced traffic onto the
//!   cyclically-next survivor.
//! * [`RandomUpstream`] — seeded random up-port per destination (the
//!   structure-oblivious baseline), deviating to the cyclically-next
//!   viable port under failures without disturbing the healthy RNG stream.
//! * [`MinHopGreedy`] — OpenSM-style least-loaded port counters over the
//!   currently-viable up ports.
//!
//! All engines leave entries for genuinely unreachable destinations
//! unprogrammed (tracing reports `NoRoute`, as a real subnet manager
//! would), and all return [`RouteError`] — never panic — when handed a
//! failure set built for a different fabric.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use ftree_topology::{LinkFailures, NodeId, PortRef, RouteError, RoutingTable, Topology};

use crate::dmodk::{dmodk_down_port, dmodk_table, dmodk_up_port};
use crate::fault::{ft_table, pick_down, Reachability};

/// A routing engine: fills destination-indexed LFTs for a (possibly
/// degraded) fabric.
///
/// The contract every engine satisfies:
///
/// * **Totality over live pairs** — if [`Reachability`] says a node can
///   deliver to a destination, the table programs an egress for that entry;
///   entries for unreachable destinations are left unprogrammed.
/// * **Failure avoidance** — no programmed entry crosses a failed link.
/// * **Errors, not panics** — inconsistent inputs (a failure set built for
///   a different topology) surface as [`RouteError::Topology`].
/// * **Determinism** — equal inputs produce bit-identical tables.
pub trait Router: Send + Sync {
    /// Engine name for reports and benches (may encode parameters, e.g.
    /// `random(seed=7)`).
    fn name(&self) -> String;

    /// Builds forwarding tables for `topo` under `failures`.
    fn route(&self, topo: &Topology, failures: &LinkFailures) -> Result<RoutingTable, RouteError>;

    /// Routes a healthy fabric. Infallible: with an empty failure set built
    /// for `topo` itself, no contract error can occur.
    fn route_healthy(&self, topo: &Topology) -> RoutingTable {
        self.route(topo, &LinkFailures::none(topo))
            .expect("routing a healthy fabric cannot fail")
    }

    /// Optional incremental-repair hook used by the subnet manager.
    ///
    /// Given the previous/next [`Reachability`] snapshots and the links
    /// whose liveness changed, patch `table` in place so it is
    /// bit-identical to a full [`Router::route`] under `failures`, and
    /// return `(entries recomputed, entries changed)`. Engines that cannot
    /// repair incrementally return `None`; the caller then falls back to a
    /// full recompute.
    fn repair(
        &self,
        _topo: &Topology,
        _failures: &LinkFailures,
        _old_reach: &Reachability,
        _new_reach: &Reachability,
        _changed_links: &[u32],
        _table: &mut RoutingTable,
    ) -> Option<(usize, usize)> {
        None
    }
}

/// The paper's closed-form D-Mod-K (eq. 1); degraded fabrics use the
/// deviation-minimizing first-fit fallback of [`crate::fault`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DModK;

impl Router for DModK {
    fn name(&self) -> String {
        "d-mod-k".to_string()
    }

    fn route(&self, topo: &Topology, failures: &LinkFailures) -> Result<RoutingTable, RouteError> {
        ft_table(topo, failures)
    }

    fn repair(
        &self,
        topo: &Topology,
        failures: &LinkFailures,
        old_reach: &Reachability,
        new_reach: &Reachability,
        changed_links: &[u32],
        table: &mut RoutingTable,
    ) -> Option<(usize, usize)> {
        Some(crate::fault::incremental_dmodk_repair(
            topo,
            failures,
            old_reach,
            new_reach,
            changed_links,
            table,
        ))
    }
}

/// Fault-resilient closed-form routing after Gliksberg et al.'s Dmodc.
///
/// While the fabric is healthy the output is **bit-identical** to
/// [`DModK`]. Under failures, each node first programs every destination
/// whose eq. 1 preferred port is still viable (the closed-form core),
/// then redistributes the *displaced* destinations over the surviving
/// viable ports choosing, per destination, the port with the least
/// destination load so far — Gliksberg's load-quality criterion, which
/// minimizes the maximal per-link destination load instead of stacking
/// all displaced traffic on the first-fit survivor. Ties break toward the
/// deviation order of [`crate::fault`] (sibling parallel cables first),
/// so single-cable failures heal exactly like first-fit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dmodc;

impl Router for Dmodc {
    fn name(&self) -> String {
        "dmodc".to_string()
    }

    fn route(&self, topo: &Topology, failures: &LinkFailures) -> Result<RoutingTable, RouteError> {
        let _span = ftree_obs::wall_span_global("core::route_dmodc");
        failures.verify_for(topo)?;
        if failures.is_empty() {
            return Ok(dmodk_table(topo));
        }
        let reach = Reachability::compute(topo, failures);
        let mut rt = RoutingTable::empty(topo, format!("dmodc({} failed)", failures.len()));
        let n = topo.num_hosts();

        if topo.spec().up_ports(0) > 1 {
            for src in 0..n {
                balance_up(
                    topo,
                    failures,
                    &reach,
                    topo.host(src),
                    0,
                    Some(src),
                    &mut rt,
                );
            }
        }
        for sw in topo.switches() {
            let level = topo.node(sw).level as usize;
            balance_up(topo, failures, &reach, sw, level, None, &mut rt);
            balance_down(topo, failures, &reach, sw, level, &mut rt);
        }
        Ok(rt)
    }
}

/// Dmodc up-side: program closed-form survivors, then least-loaded-balance
/// the displaced destinations. `src_self` is `Some(src)` for host tables
/// (skip the self entry); switches skip their descendants instead.
fn balance_up(
    topo: &Topology,
    failures: &LinkFailures,
    reach: &Reachability,
    node: NodeId,
    level: usize,
    src_self: Option<usize>,
    rt: &mut RoutingTable,
) {
    let nd = topo.node(node);
    if nd.up.is_empty() {
        return;
    }
    let n = topo.num_hosts();
    let w = topo.spec().w(level);
    let p = topo.spec().p(level);
    let mut load = vec![0u32; nd.up.len()];
    let mut displaced: Vec<usize> = Vec::new();

    for dst in 0..n {
        let skip = match src_self {
            Some(src) => dst == src,
            None => topo.is_ancestor_of(node, dst),
        };
        if skip {
            continue;
        }
        let q = dmodk_up_port(topo, level, dst);
        let pp = nd.up[q as usize];
        if failures.is_live(pp.link) && reach.ok(pp.peer, dst) {
            rt.set(node, dst, PortRef::Up(q));
            load[q as usize] += 1;
        } else if reach.ok(node, dst) {
            displaced.push(dst);
        }
    }

    for dst in displaced {
        let preferred = dmodk_up_port(topo, level, dst);
        let (b0, k0) = (preferred % w, preferred / w);
        let mut best: Option<u32> = None;
        for q in
            (0..w).flat_map(move |db| (0..p).map(move |dk| ((b0 + db) % w) + ((k0 + dk) % p) * w))
        {
            let pp = nd.up[q as usize];
            if failures.is_live(pp.link)
                && reach.ok(pp.peer, dst)
                && best.is_none_or(|b| load[q as usize] < load[b as usize])
            {
                best = Some(q);
            }
        }
        if let Some(q) = best {
            rt.set(node, dst, PortRef::Up(q));
            load[q as usize] += 1;
        }
    }
}

/// Dmodc down-side: mirrored closed form first, then least-loaded over the
/// surviving parallel cables toward the destination's child digit.
fn balance_down(
    topo: &Topology,
    failures: &LinkFailures,
    reach: &Reachability,
    node: NodeId,
    level: usize,
    rt: &mut RoutingTable,
) {
    let nd = topo.node(node);
    let n = topo.num_hosts();
    let spec = topo.spec();
    let m = spec.m(level - 1);
    let p = spec.p(level - 1);
    let mut load = vec![0u32; nd.down.len()];
    let mut displaced: Vec<usize> = Vec::new();

    for dst in 0..n {
        if !topo.is_ancestor_of(node, dst) {
            continue;
        }
        let r = dmodk_down_port(topo, level, dst);
        let pp = nd.down[r as usize];
        if failures.is_live(pp.link) && reach.ok(pp.peer, dst) {
            rt.set(node, dst, PortRef::Down(r));
            load[r as usize] += 1;
        } else if reach.ok(node, dst) {
            displaced.push(dst);
        }
    }

    for dst in displaced {
        let c = spec.host_digit(dst, level - 1);
        let k0 = (dmodk_down_port(topo, level, dst) - c) / m;
        let mut best: Option<u32> = None;
        for r in (0..p).map(|t| (k0 + t) % p).map(|k| c + k * m) {
            let pp = nd.down[r as usize];
            if failures.is_live(pp.link)
                && reach.ok(pp.peer, dst)
                && best.is_none_or(|b| load[r as usize] < load[b as usize])
            {
                best = Some(r);
            }
        }
        if let Some(r) = best {
            rt.set(node, dst, PortRef::Down(r));
            load[r as usize] += 1;
        }
    }
}

/// Seeded random up-port per destination — the structure-oblivious
/// baseline. Under failures each draw deviates to the cyclically-next
/// viable port; the draw sequence itself never changes, so the healthy
/// output is bit-identical to the legacy [`crate::route_random`] baseline
/// regardless of the failure set applied later.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomUpstream {
    /// Seed for the deterministic ChaCha8 draw stream.
    pub seed: u64,
}

impl RandomUpstream {
    /// Engine drawing from `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Router for RandomUpstream {
    fn name(&self) -> String {
        format!("random(seed={})", self.seed)
    }

    fn route(&self, topo: &Topology, failures: &LinkFailures) -> Result<RoutingTable, RouteError> {
        failures.verify_for(topo)?;
        let reach = degraded_reachability(topo, failures);
        let label = if failures.is_empty() {
            self.name()
        } else {
            format!("random(seed={},{} failed)", self.seed, failures.len())
        };
        let mut rt = RoutingTable::empty(topo, label);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let n = topo.num_hosts();
        let spec = topo.spec();

        if spec.up_ports(0) > 1 {
            for src in 0..n {
                for dst in 0..n {
                    if src != dst {
                        let q = rng.gen_range(0..spec.up_ports(0));
                        set_up_deviating(
                            topo,
                            failures,
                            reach.as_ref(),
                            topo.host(src),
                            q,
                            dst,
                            &mut rt,
                        );
                    }
                }
            }
        }
        for sw in topo.switches() {
            let level = topo.node(sw).level as usize;
            let ups = spec.up_ports(level);
            for dst in 0..n {
                if topo.is_ancestor_of(sw, dst) {
                    set_down(topo, failures, reach.as_ref(), sw, level, dst, &mut rt);
                } else {
                    let q = rng.gen_range(0..ups);
                    set_up_deviating(topo, failures, reach.as_ref(), sw, q, dst, &mut rt);
                }
            }
        }
        Ok(rt)
    }
}

/// Greedy least-loaded min-hop routing (OpenSM-style port counters),
/// restricted to the currently-viable up ports. Healthy output is
/// bit-identical to the legacy [`crate::route_minhop_greedy`] baseline.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MinHopGreedy;

impl Router for MinHopGreedy {
    fn name(&self) -> String {
        "minhop-greedy".to_string()
    }

    fn route(&self, topo: &Topology, failures: &LinkFailures) -> Result<RoutingTable, RouteError> {
        failures.verify_for(topo)?;
        let reach = degraded_reachability(topo, failures);
        let label = if failures.is_empty() {
            self.name()
        } else {
            format!("minhop-greedy({} failed)", failures.len())
        };
        let mut rt = RoutingTable::empty(topo, label);
        let n = topo.num_hosts();
        let spec = topo.spec();

        if spec.up_ports(0) > 1 {
            for src in 0..n {
                let host = topo.host(src);
                let mut counters = vec![0u32; spec.up_ports(0) as usize];
                for dst in 0..n {
                    if src == dst {
                        continue;
                    }
                    if let Some(q) =
                        least_loaded_viable(topo, failures, reach.as_ref(), host, &counters, dst)
                    {
                        counters[q as usize] += 1;
                        rt.set(host, dst, PortRef::Up(q));
                    }
                }
            }
        }
        for sw in topo.switches() {
            let level = topo.node(sw).level as usize;
            let mut counters = vec![0u32; spec.up_ports(level) as usize];
            for dst in 0..n {
                if topo.is_ancestor_of(sw, dst) {
                    set_down(topo, failures, reach.as_ref(), sw, level, dst, &mut rt);
                } else if let Some(q) =
                    least_loaded_viable(topo, failures, reach.as_ref(), sw, &counters, dst)
                {
                    counters[q as usize] += 1;
                    rt.set(sw, dst, PortRef::Up(q));
                }
            }
        }
        Ok(rt)
    }
}

/// Reachability snapshot for degraded fabrics; `None` on healthy ones so
/// the healthy fast paths skip viability checks entirely.
fn degraded_reachability(topo: &Topology, failures: &LinkFailures) -> Option<Reachability> {
    (!failures.is_empty()).then(|| Reachability::compute(topo, failures))
}

/// Program the up entry at `q0`, deviating cyclically to the next viable
/// port when degraded. Unreachable destinations stay unprogrammed.
fn set_up_deviating(
    topo: &Topology,
    failures: &LinkFailures,
    reach: Option<&Reachability>,
    node: NodeId,
    q0: u32,
    dst: usize,
    rt: &mut RoutingTable,
) {
    let Some(re) = reach else {
        rt.set(node, dst, PortRef::Up(q0));
        return;
    };
    let nd = topo.node(node);
    let ups = nd.up.len() as u32;
    for i in 0..ups {
        let q = (q0 + i) % ups;
        let pp = nd.up[q as usize];
        if failures.is_live(pp.link) && re.ok(pp.peer, dst) {
            rt.set(node, dst, PortRef::Up(q));
            return;
        }
    }
}

/// Program the descent entry: mirrored eq. 1 cable when healthy, the
/// first-fit viable parallel cable when degraded.
fn set_down(
    topo: &Topology,
    failures: &LinkFailures,
    reach: Option<&Reachability>,
    node: NodeId,
    level: usize,
    dst: usize,
    rt: &mut RoutingTable,
) {
    match reach {
        None => rt.set(node, dst, PortRef::Down(dmodk_down_port(topo, level, dst))),
        Some(re) => {
            if let Some(r) = pick_down(topo, failures, re, node, level, dst) {
                rt.set(node, dst, PortRef::Down(r));
            }
        }
    }
}

/// Least-loaded viable up port in port-index scan order (strict `<`, so
/// ties keep the lowest index — the legacy OpenSM-style tie-break).
fn least_loaded_viable(
    topo: &Topology,
    failures: &LinkFailures,
    reach: Option<&Reachability>,
    node: NodeId,
    counters: &[u32],
    dst: usize,
) -> Option<u32> {
    let nd = topo.node(node);
    let mut best: Option<u32> = None;
    for (q, pp) in nd.up.iter().enumerate() {
        let viable = match reach {
            None => true,
            Some(re) => failures.is_live(pp.link) && re.ok(pp.peer, dst),
        };
        if viable && best.is_none_or(|b| counters[q] < counters[b as usize]) {
            best = Some(q as u32);
        }
    }
    best
}

/// Every built-in engine, for sweeps and property tests. The random engine
/// draws from `random_seed`.
pub fn builtin_engines(random_seed: u64) -> Vec<Box<dyn Router>> {
    vec![
        Box::new(DModK),
        Box::new(Dmodc),
        Box::new(RandomUpstream::new(random_seed)),
        Box::new(MinHopGreedy),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::Topology;

    #[test]
    fn healthy_engines_match_legacy_closed_form() {
        let topo = Topology::build(catalog::nodes_128());
        let plain = dmodk_table(&topo);
        for engine in [&DModK as &dyn Router, &Dmodc] {
            let rt = engine.route_healthy(&topo);
            assert_eq!(rt.fingerprint(), plain.fingerprint(), "{}", engine.name());
            assert_eq!(rt.algorithm, "d-mod-k");
        }
    }

    #[test]
    fn mismatched_failure_set_is_an_error_not_a_panic() {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let other = Topology::build(catalog::nodes_128());
        let failures = LinkFailures::none(&other);
        for engine in builtin_engines(3) {
            match engine.route(&topo, &failures) {
                Err(RouteError::Topology(_)) => {}
                other => panic!("{}: expected Topology error, got {other:?}", engine.name()),
            }
        }
    }

    #[test]
    fn dmodc_single_failure_beats_first_fit_pileup() {
        // Killing leaf 0's up-port 0 on the 324-node tree displaces the
        // whole dst%18==0 residue class (17 destinations). First-fit piles
        // all of them onto the sibling parallel cable (port 9, which
        // already carries its own 17); Dmodc hands the sibling cable to
        // the first displaced destination, then round-robins the rest.
        let topo = Topology::build(catalog::nodes_324());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_up_port(&topo, leaf0, 0).unwrap();
        let ff = DModK.route(&topo, &failures).unwrap();
        let dc = Dmodc.route(&topo, &failures).unwrap();
        dc.validate(&topo, 20_000).unwrap();

        // Non-displaced destinations keep their closed-form port.
        for dst in 18..topo.num_hosts() {
            if dst % 18 != 0 {
                assert_eq!(ff.egress(leaf0, dst), dc.egress(leaf0, dst), "dst {dst}");
            }
        }
        // First displaced destination takes the sibling cable (tie at the
        // healthy load, broken toward the first-fit deviation order).
        assert_eq!(dc.egress(leaf0, 18), Some(PortRef::Up(9)));

        let per_port = |rt: &RoutingTable| {
            let mut load = vec![0u32; topo.node(leaf0).up.len()];
            for dst in 0..topo.num_hosts() {
                if let Some(PortRef::Up(q)) = rt.egress(leaf0, dst) {
                    load[q as usize] += 1;
                }
            }
            load
        };
        let (ff_load, dc_load) = (per_port(&ff), per_port(&dc));
        assert_eq!(*ff_load.iter().max().unwrap(), 34, "17 own + 17 displaced");
        assert_eq!(*dc_load.iter().max().unwrap(), 18, "round-robined");
    }

    #[test]
    fn dmodc_spreads_displaced_destinations() {
        // Kill leaf 0's up-ports 0 and 1 on the 128-node tree. First-fit
        // piles both displaced blocks onto port 2 (load 3x); Dmodc spreads
        // them across ports 2..=7, keeping the max near the mean.
        let topo = Topology::build(catalog::nodes_128());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_up_port(&topo, leaf0, 0).unwrap();
        failures.fail_up_port(&topo, leaf0, 1).unwrap();

        let per_port = |rt: &RoutingTable| {
            let mut load = vec![0u32; topo.node(leaf0).up.len()];
            for dst in 0..topo.num_hosts() {
                if let Some(PortRef::Up(q)) = rt.egress(leaf0, dst) {
                    load[q as usize] += 1;
                }
            }
            load
        };
        let ff = per_port(&DModK.route(&topo, &failures).unwrap());
        let dc_table = Dmodc.route(&topo, &failures).unwrap();
        dc_table.validate(&topo, usize::MAX).unwrap();
        let dc = per_port(&dc_table);

        assert_eq!(ff.iter().sum::<u32>(), dc.iter().sum::<u32>());
        let (ff_max, dc_max) = (*ff.iter().max().unwrap(), *dc.iter().max().unwrap());
        assert!(
            dc_max < ff_max,
            "dmodc must beat first-fit here: first-fit {ff:?}, dmodc {dc:?}"
        );
        // 120 non-local destinations over 6 surviving ports: exactly 20 each.
        assert_eq!(dc_max, 20);
    }

    #[test]
    fn dmodc_leaves_unreachable_destinations_unprogrammed() {
        // Sever leaf 0 of the 128-node tree: cross-leaf pairs get NoRoute
        // errors (not panics), intra-leaf traffic survives.
        let topo = Topology::build(catalog::nodes_128());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        for port in 0..topo.node(leaf0).up.len() as u32 {
            failures.fail_up_port(&topo, leaf0, port).unwrap();
        }
        for engine in builtin_engines(11) {
            let rt = engine.route(&topo, &failures).unwrap();
            rt.trace(&topo, 0, 3).expect("intra-leaf traffic survives");
            assert!(
                matches!(rt.trace(&topo, 0, 100), Err(RouteError::NoRoute { .. })),
                "{}",
                engine.name()
            );
            assert!(
                matches!(rt.trace(&topo, 100, 0), Err(RouteError::NoRoute { .. })),
                "{}",
                engine.name()
            );
        }
    }

    #[test]
    fn degraded_random_preserves_healthy_draw_stream() {
        // Failing one cable must only touch entries that crossed it: the
        // RNG stream is consumed identically, so every node whose ports
        // all stayed viable keeps its healthy random assignment.
        let topo = Topology::build(catalog::nodes_128());
        let engine = RandomUpstream::new(42);
        let healthy = engine.route_healthy(&topo);
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_up_port(&topo, leaf0, 5).unwrap();
        let degraded = engine.route(&topo, &failures).unwrap();
        degraded.validate(&topo, 5_000).unwrap();
        // The dead link is bidirectional, so entries toward leaf 0's hosts
        // (dst < 8) may legitimately deviate anywhere; everything else must
        // replay the healthy draw stream untouched.
        for sw in topo.switches() {
            if sw == leaf0 {
                continue;
            }
            for dst in 8..topo.num_hosts() {
                assert_eq!(healthy.egress(sw, dst), degraded.egress(sw, dst));
            }
        }
    }

    #[test]
    fn degraded_minhop_balances_over_survivors() {
        let topo = Topology::build(catalog::nodes_128());
        let leaf0 = topo.node_at(1, 0).unwrap();
        let mut failures = LinkFailures::none(&topo);
        failures.fail_up_port(&topo, leaf0, 2).unwrap();
        let rt = MinHopGreedy.route(&topo, &failures).unwrap();
        rt.validate(&topo, 5_000).unwrap();
        let mut load = vec![0u32; topo.node(leaf0).up.len()];
        for dst in 0..topo.num_hosts() {
            if let Some(PortRef::Up(q)) = rt.egress(leaf0, dst) {
                load[q as usize] += 1;
            }
        }
        assert_eq!(load[2], 0, "dead port must carry nothing");
        let live: Vec<u32> = load.iter().copied().filter(|&c| c > 0).collect();
        let (min, max) = (live.iter().min().unwrap(), live.iter().max().unwrap());
        assert!(max - min <= 1, "unbalanced: {load:?}");
    }
}
