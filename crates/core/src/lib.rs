//! # ftree-core — contention-free fat-tree routing and node ordering
//!
//! The primary contribution of Zahavi's paper, as a library:
//!
//! * [`router`] — the pluggable [`Router`] engine trait: closed-form
//!   [`DModK`], fault-resilient load-balanced [`Dmodc`], and the
//!   [`RandomUpstream`] / [`MinHopGreedy`] baselines, all consuming a
//!   [`ftree_topology::LinkFailures`] state,
//! * [`dmodk`] — the closed-form **D-Mod-K** routing (eq. 1) extended to
//!   real-life fat-trees, filling standard destination-indexed LFTs,
//! * [`baselines`] — random up-port and greedy min-hop routings for the
//!   evaluation comparisons (deprecated wrappers over the engines),
//! * [`ordering`] — MPI rank → end-port assignments: topology order (the
//!   contention-free choice), random (the measured 40%-loss baseline) and
//!   the adversarial Ring layout (the 7.1% worst case of Sec. II),
//! * [`planner`] — the [`Job`] API bundling topology, routing and order,
//!   and translating CPS stages into port-space flows.
//!
//! ```
//! use ftree_core::Job;
//! use ftree_collectives::{Cps, PermutationSequence};
//! use ftree_topology::{rlft::catalog, Topology};
//!
//! let topo = Topology::build(catalog::nodes_128());
//! let job = Job::contention_free(&topo);
//! let stage = Cps::Shift.stage(job.num_ranks(), 3);
//! let flows = job.stage_flows(&stage);
//! assert_eq!(flows.len(), 128);
//! ```

#![warn(missing_docs)]

pub mod allocation;
pub mod baselines;
pub mod dmodk;
pub mod fault;
pub mod ordering;
pub mod planner;
pub mod router;
pub mod sm;

pub use allocation::{AllocError, Allocation, Allocator};
#[allow(deprecated)]
pub use baselines::{route_minhop_greedy, route_random};
#[allow(deprecated)]
pub use dmodk::route_dmodk;
pub use dmodk::{dmodk_down_port, dmodk_up_port};
#[allow(deprecated)]
pub use fault::route_dmodk_ft;
pub use fault::Reachability;
pub use ordering::NodeOrder;
pub use planner::{aligned_suballocation, suballocation_unit, Job, RoutingAlgo};
pub use router::{builtin_engines, DModK, Dmodc, MinHopGreedy, RandomUpstream, Router};
pub use sm::{SubnetManager, SweepCheck, SweepReport};
