//! D-Mod-K routing for PGFTs/RLFTs (paper Sec. V, eq. 1).
//!
//! The closed form: a node at level `l` (zero-based parameter indexing)
//! forwards traffic for destination host `j` through up-going port
//!
//! ```text
//! q = floor(j / (w_1 * ... * w_l)) mod (w_{l+1} * p_{l+1})
//! ```
//!
//! unless the node is an ancestor of `j`, in which case traffic descends:
//! the child is selected by `j`'s level-`l` digit and the parallel cable by
//! the mirrored expression `k = (floor(j / (w_1..w_{l-1})) / w_l) mod p_l`,
//! so that the downward path from the root is the exact reverse of the
//! upward paths toward `j` (Lemma 5) and each down-going port carries
//! exactly one destination on a complete RLFT (Theorem 2).
//!
//! The up-port rule spreads any *contiguous* destination window cyclically
//! across all up-going ports (Lemmas 1–4), which is what makes every stage
//! of the Shift CPS — and therefore every unidirectional CPS — free of
//! contention (Theorem 1) when ranks are assigned in topology order.

use ftree_topology::{NodeId, PortRef, RoutingTable, Topology};

/// Closed-form up-going port for destination `j` at a level-`l` node
/// (paper eq. 1). Not meaningful at the top level (no up ports).
#[inline]
pub fn dmodk_up_port(topo: &Topology, level: usize, j: usize) -> u32 {
    let spec = topo.spec();
    let divisor = spec.w_prefix(level);
    ((j / divisor) % (spec.up_ports(level) as usize)) as u32
}

/// Closed-form down-going port at a level-`l` ancestor of `j`.
#[inline]
pub fn dmodk_down_port(topo: &Topology, level: usize, j: usize) -> u32 {
    debug_assert!(level >= 1);
    let spec = topo.spec();
    let c = spec.host_digit(j, level - 1);
    let k =
        ((j / spec.w_prefix(level - 1)) / spec.w(level - 1) as usize) % spec.p(level - 1) as usize;
    c + (k as u32) * spec.m(level - 1)
}

/// Builds the complete D-Mod-K linear forwarding tables for `topo`.
///
/// Works for any PGFT; the contention-freedom guarantees of Theorems 1 and 2
/// additionally require the topology to satisfy the RLFT restrictions
/// (checked by [`ftree_topology::rlft::require_rlft`]).
#[deprecated(note = "use the `DModK` routing engine: `DModK.route_healthy(topo)`")]
pub fn route_dmodk(topo: &Topology) -> RoutingTable {
    dmodk_table(topo)
}

/// The shared closed-form table builder behind the [`crate::router::DModK`]
/// and [`crate::router::Dmodc`] engines (their healthy fast path) and the
/// deprecated [`route_dmodk`] wrapper.
pub(crate) fn dmodk_table(topo: &Topology) -> RoutingTable {
    let _span = ftree_obs::wall_span_global("core::route_dmodk");
    let mut rt = RoutingTable::empty(topo, "d-mod-k");
    let n = topo.num_hosts();
    let spec = topo.spec();

    // Multi-cabled hosts (general PGFTs) pick their first hop by eq. 1 at
    // level 0; single-cabled RLFT hosts need no table.
    if spec.up_ports(0) > 1 {
        for src in 0..n {
            let host = topo.host(src);
            for dst in 0..n {
                if src != dst {
                    rt.set(host, dst, PortRef::Up(dmodk_up_port(topo, 0, dst)));
                }
            }
        }
    }

    for sw in topo.switches() {
        let level = topo.node(sw).level as usize;
        for dst in 0..n {
            let port = if topo.is_ancestor_of(sw, dst) {
                PortRef::Down(dmodk_down_port(topo, level, dst))
            } else {
                PortRef::Up(dmodk_up_port(topo, level, dst))
            };
            rt.set(sw, dst, port);
        }
    }
    rt
}

/// Destinations whose traffic a node forwards upward form the arithmetic
/// super-set of Lemma 1: `sum(b_i * W_{i-1}) + t * W_l`. Exposed for tests
/// and documentation; returns the first `count` elements.
pub fn lemma1_sequence(topo: &Topology, node: NodeId, count: usize) -> Vec<usize> {
    let spec = topo.spec();
    let nd = topo.node(node);
    let l = nd.level as usize;
    let base: usize = (0..l)
        .map(|i| nd.digits[i] as usize * spec.w_prefix(i))
        .sum();
    let step = spec.w_prefix(l);
    (0..count).map(|t| base + t * step).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftree_topology::rlft::catalog;
    use ftree_topology::{PgftSpec, Topology};

    fn routed(spec: PgftSpec) -> (Topology, RoutingTable) {
        let topo = Topology::build(spec);
        let rt = dmodk_table(&topo);
        (topo, rt)
    }

    #[test]
    fn validates_on_catalog_trees() {
        for spec in [
            catalog::nodes_128(),
            catalog::nodes_324(),
            catalog::fig4_pgft_16(),
            catalog::fig4_xgft_16(),
            PgftSpec::k_ary_n_tree(4, 3).unwrap(),
        ] {
            let (topo, rt) = routed(spec);
            rt.validate(&topo, 5000)
                .unwrap_or_else(|e| panic!("{}: {e}", topo.spec()));
        }
    }

    #[test]
    fn leaf_up_port_is_dst_mod_k() {
        // Paper: "for the lowest level leaf switches, the index of the
        // up-going port for a given destination is the destination index
        // modulo the total number of up-going ports."
        let (topo, rt) = routed(catalog::nodes_128());
        let leaf = topo.node_at(1, 0).unwrap();
        for dst in 8..128 {
            // hosts 0..8 are below leaf 0
            assert_eq!(rt.egress(leaf, dst), Some(PortRef::Up((dst % 8) as u32)));
        }
    }

    #[test]
    fn down_ports_carry_one_destination_of_actual_traffic() {
        // Theorem 2: over the traffic that actually traverses the network
        // (LFT entries for destinations that never reach a switch don't
        // count), every down-going port serves exactly one destination.
        for spec in [
            catalog::nodes_324(),
            catalog::nodes_128(),
            catalog::fig4_pgft_16(),
        ] {
            let (topo, rt) = routed(spec);
            let n = topo.num_hosts();
            // (channel used downward) -> destination; force the longest
            // paths by picking a source in a different top-level subtree.
            let far = topo.spec().m_prefix(topo.height() - 1);
            let mut owner: Vec<Option<usize>> = vec![None; topo.num_channels()];
            for dst in 0..n {
                let src = (dst + far) % n;
                let path = rt.trace(&topo, src, dst).unwrap();
                for ch in path.channels {
                    if ch.direction() == ftree_topology::Direction::Down {
                        match owner[ch.index()] {
                            None => owner[ch.index()] = Some(dst),
                            Some(prev) => assert_eq!(
                                prev,
                                dst,
                                "{}: down channel shared by two destinations",
                                topo.spec()
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn top_switches_see_exactly_2k_destinations() {
        // Lemma 6: a top-level RLFT switch passes traffic for exactly 2K
        // destinations.
        let (topo, rt) = routed(catalog::nodes_128());
        let k = 8usize;
        let n = topo.num_hosts();
        let top_level = topo.height();
        let mut per_top = std::collections::HashMap::new();
        for dst in 0..n {
            let src = (dst + topo.spec().m_prefix(top_level - 1)) % n;
            let path = rt.trace(&topo, src, dst).unwrap();
            for nid in path.nodes {
                if topo.node(nid).level as usize == top_level {
                    *per_top.entry(nid).or_insert(0usize) += 1;
                }
            }
        }
        assert_eq!(per_top.len(), topo.spec().nodes_at_level(top_level));
        for (&sw, &count) in &per_top {
            assert_eq!(count, 2 * k, "top switch {}", topo.node_name(sw));
        }
    }

    #[test]
    fn single_top_switch_per_destination() {
        // Lemma 5: all traffic toward one destination converges on a single
        // top-level switch.
        let (topo, rt) = routed(catalog::fig4_pgft_16());
        for dst in 0..topo.num_hosts() {
            let mut tops = std::collections::HashSet::new();
            for src in 0..topo.num_hosts() {
                if src == dst {
                    continue;
                }
                let path = rt.trace(&topo, src, dst).unwrap();
                for &nid in &path.nodes {
                    if topo.node(nid).level as usize == topo.height() {
                        tops.insert(nid);
                    }
                }
            }
            assert!(
                tops.len() <= 1,
                "dst {dst} uses {} top switches",
                tops.len()
            );
        }
    }

    #[test]
    fn paths_to_same_destination_share_their_suffix() {
        // Destination-based routing: once two paths toward the same host
        // meet at any node, the rest of the route is identical. This is the
        // tree-of-paths structure behind Theorem 2.
        let (topo, rt) = routed(catalog::fig4_pgft_16());
        for dst in 0..topo.num_hosts() {
            let paths: Vec<_> = (0..topo.num_hosts())
                .filter(|&s| s != dst)
                .map(|s| rt.trace(&topo, s, dst).unwrap())
                .collect();
            for a in &paths {
                for b in &paths {
                    // Find the first node of `a` that also appears in `b`.
                    if let Some((ia, ib)) = a.nodes.iter().enumerate().find_map(|(ia, na)| {
                        b.nodes.iter().position(|nb| nb == na).map(|ib| (ia, ib))
                    }) {
                        assert_eq!(
                            &a.nodes[ia..],
                            &b.nodes[ib..],
                            "paths diverge after meeting, dst {dst}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forward_and_reverse_paths_have_equal_length() {
        let (topo, rt) = routed(catalog::nodes_128());
        for (src, dst) in [(0usize, 127usize), (3, 12), (7, 8), (100, 5)] {
            let fwd = rt.trace(&topo, src, dst).unwrap();
            let back = rt.trace(&topo, dst, src).unwrap();
            assert_eq!(fwd.len(), back.len(), "{src}<->{dst}");
            assert_eq!(fwd.apex_level(&topo), back.apex_level(&topo));
        }
    }

    #[test]
    fn lemma1_sequence_matches_routed_destinations() {
        let (topo, rt) = routed(catalog::nodes_128());
        // A level-1 switch forwards upward only destinations from the
        // lemma-1 arithmetic sequence.
        let leaf = topo.node_at(1, 3).unwrap();
        let seq = lemma1_sequence(&topo, leaf, 200);
        for dst in 0..topo.num_hosts() {
            if let Some(PortRef::Up(_)) = rt.egress(leaf, dst) {
                assert!(
                    seq.contains(&dst),
                    "dst {dst} not in lemma-1 sequence of leaf 3"
                );
            }
        }
    }

    #[test]
    fn path_lengths_are_minimal() {
        // Intra-leaf: 2 hops; cross-leaf on a 2-level tree: 4 hops.
        let (topo, rt) = routed(catalog::nodes_128());
        assert_eq!(rt.trace(&topo, 0, 1).unwrap().len(), 2);
        assert_eq!(rt.trace(&topo, 0, 100).unwrap().len(), 4);
        let (topo3, rt3) = routed(PgftSpec::k_ary_n_tree(4, 3).unwrap());
        // host 63 differs from host 0 in the top digit: full 6-hop path.
        assert_eq!(rt3.trace(&topo3, 0, 63).unwrap().len(), 6);
        // host 5 = digits (1,1,0): common ancestor at level 2, 4 hops.
        assert_eq!(rt3.trace(&topo3, 0, 5).unwrap().len(), 4);
    }
}
