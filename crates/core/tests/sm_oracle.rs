//! Oracle tests for subnet-manager repair: after every sweep the active
//! table must be **bit-identical** to a full `Router::route` recompute on
//! the same failure set, and a fully healed fabric must return tables
//! bit-identical to plain D-Mod-K. The default `DModK` engine exercises
//! the exact incremental-repair path; the other engines exercise the
//! full-recompute fallback.

use ftree_core::{builtin_engines, DModK, Router, SubnetManager};
use ftree_topology::rlft::catalog;
use ftree_topology::{ChaosGen, FaultSchedule, LinkEvent, LinkEventKind, RoutingTable, Topology};

/// Seeded switch-link fault timeline (the former
/// `FaultSchedule::random_switch_links`, reproduced event for event by
/// `ChaosGen::random_links`).
fn random_switch_links(
    topo: &Topology,
    seed: u64,
    count: usize,
    window: u64,
    repair_after: u64,
) -> FaultSchedule {
    ChaosGen::new(seed)
        .random_links(topo, count, window, repair_after)
        .lower(topo)
        .expect("generated scenario fits the topology")
        .faults
}

/// Every entry (switch and host) plus the algorithm label.
fn tables_identical(topo: &Topology, a: &RoutingTable, b: &RoutingTable) -> bool {
    if a.algorithm != b.algorithm {
        return false;
    }
    let n = topo.num_hosts();
    for sw in topo.switches() {
        for dst in 0..n {
            if a.egress(sw, dst) != b.egress(sw, dst) {
                return false;
            }
        }
    }
    for h in 0..n {
        for dst in 0..n {
            if a.egress(topo.host(h), dst) != b.egress(topo.host(h), dst) {
                return false;
            }
        }
    }
    true
}

/// Plays a schedule sweep-by-sweep, comparing against the full recompute
/// after every sweep, then (when the schedule heals fully) against plain
/// D-Mod-K at the end.
fn check_oracle(topo: &Topology, schedule: FaultSchedule) {
    let heals = schedule
        .events()
        .iter()
        .filter(|e| e.kind == LinkEventKind::Recover)
        .count()
        == schedule.len() / 2
        && schedule.len().is_multiple_of(2);
    let mut sm = SubnetManager::new(topo, schedule).unwrap();
    while let Some(t) = sm.next_event_time() {
        sm.sweep(topo, t);
        let full = DModK.route(topo, sm.failures()).unwrap();
        assert!(
            tables_identical(topo, sm.table(), &full),
            "incremental repair diverged from full recompute at t={t}"
        );
    }
    assert!(sm.is_settled());
    if heals {
        assert!(sm.failures().is_empty());
        assert!(
            tables_identical(topo, sm.table(), &DModK.route_healthy(topo)),
            "healed fabric is not bit-identical to plain d-mod-k"
        );
        assert_eq!(sm.table().algorithm, "d-mod-k");
    }
}

#[test]
fn oracle_holds_across_catalog_topologies() {
    // ≥ 3 catalog topologies (acceptance criterion): the Figure-4 PGFT and
    // the paper's 128- and 324-node clusters.
    for (spec, count) in [
        (catalog::fig4_pgft_16(), 4),
        (catalog::nodes_128(), 6),
        (catalog::nodes_324(), 6),
    ] {
        let topo = Topology::build(spec);
        for seed in [1u64, 42, 0xdead_beef] {
            // Every failure recovers 350µs later: the timeline exercises
            // both directions and ends healthy.
            let sched = random_switch_links(&topo, seed, count, 300_000_000, 350_000_000);
            check_oracle(&topo, sched);
        }
    }
}

#[test]
fn oracle_holds_for_permanent_failures() {
    let topo = Topology::build(catalog::nodes_128());
    let sched = random_switch_links(&topo, 7, 8, 1_000_000, 0);
    check_oracle(&topo, sched);
}

/// Deterministic stand-in for the former proptest generator: SplitMix64
/// pick streams drive random fail/recover timelines (duplicates and no-ops
/// included) over the Figure-4 PGFT's switch links.
#[test]
fn random_timelines_match_full_recompute() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let switch_links: Vec<u32> = (0..topo.num_links() as u32)
        .filter(|&l| !topo.node(topo.link(l).child).is_host())
        .collect();
    for seed in 0u64..12 {
        let mut x = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let len = (next() % 15) as usize;
        let events: Vec<LinkEvent> = (0..len)
            .map(|i| LinkEvent {
                time: (i as u64 + 1) * 1_000,
                link: switch_links[next() as usize % switch_links.len()],
                kind: if next() % 2 == 0 {
                    LinkEventKind::Fail
                } else {
                    LinkEventKind::Recover
                },
            })
            .collect();
        let mut sm = SubnetManager::new(&topo, FaultSchedule::new(events)).unwrap();
        while let Some(t) = sm.next_event_time() {
            sm.sweep(&topo, t);
            let full = DModK.route(&topo, sm.failures()).unwrap();
            assert!(
                tables_identical(&topo, sm.table(), &full),
                "seed {seed}: diverged at t={t}"
            );
        }
    }
}

/// Engines without a repair hook take the full-recompute fallback; the
/// active table must still match a from-scratch route after every sweep,
/// and the healed fabric must be bit-identical to the healthy table.
#[test]
fn fallback_recompute_matches_for_every_engine() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    // Two instances of each engine: one drives the manager, its twin is
    // the from-scratch oracle.
    for (engine, oracle) in builtin_engines(23).into_iter().zip(builtin_engines(23)) {
        let sched = random_switch_links(&topo, 5, 4, 100_000, 250_000);
        let healthy = oracle.route_healthy(&topo);
        let mut sm = SubnetManager::with_engine(&topo, sched, engine).unwrap();
        assert!(tables_identical(&topo, sm.table(), &healthy));
        while let Some(t) = sm.next_event_time() {
            sm.sweep(&topo, t);
            let full = oracle.route(&topo, sm.failures()).unwrap();
            assert!(
                tables_identical(&topo, sm.table(), &full),
                "{}: sweep diverged from full recompute at t={t}",
                oracle.name()
            );
        }
        assert!(sm.is_settled());
        assert!(sm.failures().is_empty(), "schedule heals fully");
        assert!(
            tables_identical(&topo, sm.table(), &healthy),
            "{} did not heal back to its healthy table",
            oracle.name()
        );
    }
}
