//! Oracle tests for incremental LFT repair: after every subnet-manager
//! sweep the repaired table must be **bit-identical** to a full
//! `route_dmodk_ft` recompute on the same failure set, and a fully healed
//! fabric must return tables bit-identical to plain `route_dmodk`.

use proptest::prelude::*;

use ftree_core::{route_dmodk, route_dmodk_ft, SubnetManager};
use ftree_topology::rlft::catalog;
use ftree_topology::{FaultSchedule, LinkEvent, LinkEventKind, RoutingTable, Topology};

/// Every entry (switch and host) plus the algorithm label.
fn tables_identical(topo: &Topology, a: &RoutingTable, b: &RoutingTable) -> bool {
    if a.algorithm != b.algorithm {
        return false;
    }
    let n = topo.num_hosts();
    for sw in topo.switches() {
        for dst in 0..n {
            if a.egress(sw, dst) != b.egress(sw, dst) {
                return false;
            }
        }
    }
    for h in 0..n {
        for dst in 0..n {
            if a.egress(topo.host(h), dst) != b.egress(topo.host(h), dst) {
                return false;
            }
        }
    }
    true
}

/// Plays a schedule sweep-by-sweep, comparing against the full recompute
/// after every sweep, then (when the schedule heals fully) against plain
/// D-Mod-K at the end.
fn check_oracle(topo: &Topology, schedule: FaultSchedule) {
    let heals = schedule
        .events()
        .iter()
        .filter(|e| e.kind == LinkEventKind::Recover)
        .count()
        == schedule.len() / 2
        && schedule.len() % 2 == 0;
    let mut sm = SubnetManager::new(topo, schedule).unwrap();
    while let Some(t) = sm.next_event_time() {
        sm.sweep(topo, t);
        let full = route_dmodk_ft(topo, sm.failures());
        assert!(
            tables_identical(topo, sm.table(), &full),
            "incremental repair diverged from full recompute at t={t}"
        );
    }
    assert!(sm.is_settled());
    if heals {
        assert!(sm.failures().is_empty());
        assert!(
            tables_identical(topo, sm.table(), &route_dmodk(topo)),
            "healed fabric is not bit-identical to plain d-mod-k"
        );
        assert_eq!(sm.table().algorithm, "d-mod-k");
    }
}

#[test]
fn oracle_holds_across_catalog_topologies() {
    // ≥ 3 catalog topologies (acceptance criterion): the Figure-4 PGFT and
    // the paper's 128- and 324-node clusters.
    for (spec, count) in [
        (catalog::fig4_pgft_16(), 4),
        (catalog::nodes_128(), 6),
        (catalog::nodes_324(), 6),
    ] {
        let topo = Topology::build(spec);
        for seed in [1u64, 42, 0xdead_beef] {
            // Every failure recovers 350µs later: the timeline exercises
            // both directions and ends healthy.
            let sched =
                FaultSchedule::random_switch_links(&topo, seed, count, 300_000_000, 350_000_000);
            check_oracle(&topo, sched);
        }
    }
}

#[test]
fn oracle_holds_for_permanent_failures() {
    let topo = Topology::build(catalog::nodes_128());
    let sched = FaultSchedule::random_switch_links(&topo, 7, 8, 1_000_000, 0);
    check_oracle(&topo, sched);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random timelines (fail and recover interleaved, duplicates and
    /// no-ops included) on the Figure-4 PGFT: every intermediate table is
    /// bit-identical to the full recompute.
    #[test]
    fn random_timelines_match_full_recompute(
        picks in prop::collection::vec((0u16..u16::MAX, any::<bool>()), 0..14)
    ) {
        let topo = Topology::build(catalog::fig4_pgft_16());
        let switch_links: Vec<u32> = (0..topo.num_links() as u32)
            .filter(|&l| !topo.node(topo.link(l).child).is_host())
            .collect();
        let events: Vec<LinkEvent> = picks
            .iter()
            .enumerate()
            .map(|(i, &(p, recover))| LinkEvent {
                time: (i as u64 + 1) * 1_000,
                link: switch_links[p as usize % switch_links.len()],
                kind: if recover { LinkEventKind::Recover } else { LinkEventKind::Fail },
            })
            .collect();
        let mut sm = SubnetManager::new(&topo, FaultSchedule::new(events)).unwrap();
        while let Some(t) = sm.next_event_time() {
            sm.sweep(&topo, t);
            let full = route_dmodk_ft(&topo, sm.failures());
            prop_assert!(tables_identical(&topo, sm.table(), &full));
        }
    }
}
