//! Oracle pins for the deprecated routing free functions and the healthy
//! bit-identity acceptance criterion.
//!
//! * The deprecated wrappers (`route_dmodk`, `route_random`,
//!   `route_minhop_greedy`, `route_dmodk_ft`) must keep producing output
//!   identical to the engines they wrap.
//! * On healthy catalog topologies the `DModK` and `Dmodc` engines must be
//!   bit-identical to `route_dmodk`, pinned by hard-coded table
//!   fingerprints so an accidental algorithm change cannot slip through.

#![allow(deprecated)]

use ftree_core::{
    route_dmodk, route_dmodk_ft, route_minhop_greedy, route_random, DModK, Dmodc, MinHopGreedy,
    RandomUpstream, Router,
};
use ftree_topology::rlft::catalog;
use ftree_topology::{LinkFailures, PgftSpec, Topology};

/// Healthy D-Mod-K fingerprints, computed once and pinned. If a change
/// legitimately alters the closed form (it should not), update these in
/// the same commit that explains why.
const PINNED: &[(&str, u64)] = &[
    ("fig4_pgft_16", 0xb59b56ebd01e6d85),
    ("nodes_128", 0xb6c59f0617e49c75),
    ("nodes_324", 0xb6f68625062328b6),
];

fn pinned_topo(name: &str) -> Topology {
    let spec: PgftSpec = match name {
        "fig4_pgft_16" => catalog::fig4_pgft_16(),
        "nodes_128" => catalog::nodes_128(),
        "nodes_324" => catalog::nodes_324(),
        other => panic!("unknown pinned topology {other}"),
    };
    Topology::build(spec)
}

#[test]
fn healthy_dmodk_and_dmodc_match_pinned_fingerprints() {
    for &(name, want) in PINNED {
        let topo = pinned_topo(name);
        let legacy = route_dmodk(&topo);
        assert_eq!(legacy.fingerprint(), want, "route_dmodk on {name}");
        for engine in [&DModK as &dyn Router, &Dmodc] {
            let rt = engine.route_healthy(&topo);
            assert_eq!(
                rt.fingerprint(),
                want,
                "{} on {name} diverged from pinned d-mod-k",
                engine.name()
            );
            assert_eq!(rt.algorithm, "d-mod-k");
        }
    }
}

#[test]
fn deprecated_wrappers_match_their_engines() {
    let topo = Topology::build(catalog::nodes_128());

    let a = route_dmodk(&topo);
    let b = DModK.route_healthy(&topo);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.algorithm, b.algorithm);

    let a = route_random(&topo, 1234);
    let b = RandomUpstream::new(1234).route_healthy(&topo);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.algorithm, b.algorithm);

    let a = route_minhop_greedy(&topo);
    let b = MinHopGreedy.route_healthy(&topo);
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.algorithm, b.algorithm);

    let failures =
        LinkFailures::seeded_where(&topo, 99, 4, |t, l| !t.node(t.link(l).child).is_host());
    let a = route_dmodk_ft(&topo, &failures);
    let b = DModK.route(&topo, &failures).unwrap();
    assert_eq!(a.fingerprint(), b.fingerprint());
    assert_eq!(a.algorithm, b.algorithm);
}

#[test]
#[should_panic(expected = "failure set was built for topology")]
fn deprecated_ft_wrapper_still_panics_on_mismatch() {
    let topo = Topology::build(catalog::fig4_pgft_16());
    let other = Topology::build(catalog::nodes_128());
    let _ = route_dmodk_ft(&topo, &LinkFailures::none(&other));
}
