//! Property tests of fault-aware routing, engine by engine: seeded failure
//! sets must never produce routes over dead cables, programmed pairs must
//! be exactly the reachable ones, and healing must be complete whenever
//! connectivity allows.

use ftree_core::{builtin_engines, DModK, Reachability, Router};
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::{PgftSpec, RouteError, Topology};

/// Seeded failure set over switch-to-switch cables only (host cables
/// excluded so failures degrade paths instead of amputating hosts).
fn switch_failures(topo: &Topology, seed: u64, count: usize) -> LinkFailures {
    LinkFailures::seeded_where(topo, seed, count, |t, l| !t.node(t.link(l).child).is_host())
}

/// The catalog fabrics the properties run on: both paper clusters, the
/// Figure-4 PGFT, and a 3-level tree with parallel top cables.
fn catalog_specs() -> Vec<PgftSpec> {
    vec![
        catalog::fig4_pgft_16(),
        catalog::nodes_128(),
        catalog::nodes_324(),
        PgftSpec::from_slices(&[4, 4, 4], &[1, 4, 2], &[1, 1, 2]).unwrap(),
    ]
}

/// Every engine × every catalog topology × seeded `LinkFailures` states:
/// routed paths avoid all failed links, and the set of unroutable ordered
/// pairs exactly matches `Reachability::unreachable_pairs`.
#[test]
fn engines_avoid_dead_links_and_cover_exactly_the_reachable_pairs() {
    for spec in catalog_specs() {
        let topo = Topology::build(spec);
        for seed in [3u64, 17, 0xfeed] {
            let failures = switch_failures(&topo, seed, 5);
            let reach = Reachability::compute(&topo, &failures);
            let unreachable: std::collections::BTreeSet<(usize, usize)> =
                reach.unreachable_pairs(&topo).into_iter().collect();
            for engine in builtin_engines(seed) {
                let rt = engine.route(&topo, &failures).unwrap();
                for src in 0..topo.num_hosts() {
                    for dst in 0..topo.num_hosts() {
                        if src == dst {
                            continue;
                        }
                        match rt.trace(&topo, src, dst) {
                            Ok(path) => {
                                assert!(
                                    !unreachable.contains(&(src, dst)),
                                    "{} {}: routed an unreachable pair {src}->{dst}",
                                    engine.name(),
                                    topo.spec()
                                );
                                for ch in &path.channels {
                                    assert!(
                                        failures.is_live(ch.link()),
                                        "{} {}: {src}->{dst} crosses dead link",
                                        engine.name(),
                                        topo.spec()
                                    );
                                }
                            }
                            Err(RouteError::NoRoute { .. }) => {
                                assert!(
                                    unreachable.contains(&(src, dst)),
                                    "{} {}: dropped a reachable pair {src}->{dst}",
                                    engine.name(),
                                    topo.spec()
                                );
                            }
                            Err(e) => panic!("{}: unexpected error {e}", engine.name()),
                        }
                    }
                }
            }
        }
    }
}

/// With any (non-partitioning) failure set: all pairs reachable, no path
/// uses a dead cable, and paths remain minimal up*/down*.
#[test]
fn random_failures_heal_without_using_dead_cables() {
    let topo = Topology::build(catalog::nodes_324());
    for seed in 0u64..16 {
        let failures = switch_failures(&topo, seed, (seed % 12) as usize);
        let reach = Reachability::compute(&topo, &failures);
        if !reach.unreachable_pairs(&topo).is_empty() {
            continue;
        }
        let rt = DModK.route(&topo, &failures).unwrap();
        rt.validate(&topo, 3000).unwrap();
        for src in (0..topo.num_hosts()).step_by(31) {
            for dst in (0..topo.num_hosts()).step_by(17) {
                let path = rt.trace(&topo, src, dst).unwrap();
                for ch in &path.channels {
                    assert!(failures.is_live(ch.link()), "path uses dead cable");
                }
                assert!(path.len() <= 2 * topo.height());
            }
        }
    }
}

/// Deviation minimality: where the healthy route survived, the fault-aware
/// path is live and no longer than the healthy one.
#[test]
fn only_affected_destinations_are_perturbed() {
    let topo = Topology::build(catalog::nodes_128());
    // 128-node tree has p = 1, so failures always force parent changes.
    for seed in [2u64, 9, 77] {
        let failures = switch_failures(&topo, seed, 4);
        let reach = Reachability::compute(&topo, &failures);
        if !reach.unreachable_pairs(&topo).is_empty() {
            continue;
        }
        let healthy = DModK.route_healthy(&topo);
        let ft = DModK.route(&topo, &failures).unwrap();
        for src in (0..topo.num_hosts()).step_by(13) {
            for dst in 0..topo.num_hosts() {
                let healthy_path = healthy.trace(&topo, src, dst).unwrap();
                let healthy_is_live = healthy_path
                    .channels
                    .iter()
                    .all(|ch| failures.is_live(ch.link()));
                if healthy_is_live {
                    let ft_path = ft.trace(&topo, src, dst).unwrap();
                    assert!(ft_path.len() <= healthy_path.len());
                }
            }
        }
    }
}
