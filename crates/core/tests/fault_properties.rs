//! Property-based tests of fault-aware routing: random failure sets must
//! never produce routes over dead cables, and healing must be complete
//! whenever connectivity allows.

use proptest::prelude::*;

use ftree_core::{route_dmodk, route_dmodk_ft, Reachability};
use ftree_topology::failures::LinkFailures;
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

/// Random failure sets over the 324-node tree's switch-to-switch cables
/// (host cables excluded so full reachability is preserved).
fn failure_set(topo: &Topology, picks: &[u16]) -> LinkFailures {
    let mut failures = LinkFailures::none(topo);
    let switch_links: Vec<u32> = topo
        .links()
        .iter()
        .enumerate()
        .filter(|(_, l)| !topo.node(l.child).is_host())
        .map(|(i, _)| i as u32)
        .collect();
    for &p in picks {
        failures
            .fail(switch_links[p as usize % switch_links.len()])
            .unwrap();
    }
    failures
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// With any (non-partitioning) failure set: all pairs reachable, no
    /// path uses a dead cable, and paths remain minimal up*/down*.
    #[test]
    fn random_failures_heal_without_using_dead_cables(
        picks in prop::collection::vec(0u16..u16::MAX, 0..12)
    ) {
        let topo = Topology::build(catalog::nodes_324());
        let failures = failure_set(&topo, &picks);
        let reach = Reachability::compute(&topo, &failures);
        prop_assume!(reach.unreachable_pairs(&topo).is_empty());

        let rt = route_dmodk_ft(&topo, &failures);
        rt.validate(&topo, 3000).unwrap();
        for src in (0..topo.num_hosts()).step_by(31) {
            for dst in (0..topo.num_hosts()).step_by(17) {
                let path = rt.trace(&topo, src, dst).unwrap();
                for ch in &path.channels {
                    prop_assert!(failures.is_live(ch.link()), "path uses dead cable");
                }
                prop_assert!(path.len() <= 2 * topo.height());
            }
        }
    }

    /// Deviation minimality: LFT entries differ from healthy D-Mod-K only
    /// where the healthy route crossed a failed cable somewhere.
    #[test]
    fn only_affected_destinations_are_perturbed(
        picks in prop::collection::vec(0u16..u16::MAX, 1..6)
    ) {
        let topo = Topology::build(catalog::nodes_128());
        // 128-node tree has p = 1, so failures always force parent changes.
        let mut failures = LinkFailures::none(&topo);
        let switch_links: Vec<u32> = topo
            .links()
            .iter()
            .enumerate()
            .filter(|(_, l)| !topo.node(l.child).is_host())
            .map(|(i, _)| i as u32)
            .collect();
        for &p in &picks {
            failures
                .fail(switch_links[p as usize % switch_links.len()])
                .unwrap();
        }
        let reach = Reachability::compute(&topo, &failures);
        prop_assume!(reach.unreachable_pairs(&topo).is_empty());

        let healthy = route_dmodk(&topo);
        let ft = route_dmodk_ft(&topo, &failures);
        for src in (0..topo.num_hosts()).step_by(13) {
            for dst in 0..topo.num_hosts() {
                let healthy_path = healthy.trace(&topo, src, dst).unwrap();
                let healthy_is_live = healthy_path
                    .channels
                    .iter()
                    .all(|ch| failures.is_live(ch.link()));
                if healthy_is_live {
                    // The fault-aware route may still differ (another
                    // destination's detour never affects this one, but this
                    // path's own switches may have rerouted `dst` if some
                    // OTHER source's route to dst died). Check the weaker,
                    // exact invariant: the fault-aware path is live and no
                    // longer than the healthy one.
                    let ft_path = ft.trace(&topo, src, dst).unwrap();
                    prop_assert!(ft_path.len() <= healthy_path.len());
                }
            }
        }
    }
}
