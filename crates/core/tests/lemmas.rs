//! The paper's appendix lemmas, machine-checked one by one.
//!
//! Theorems 1 and 2 are covered end-to-end elsewhere (HSD = 1 over whole
//! sequences); these tests pin down the individual stepping stones so a
//! regression points at the exact broken argument.

use ftree_core::{dmodk_up_port, DModK, Router};
use ftree_topology::rlft::catalog;
use ftree_topology::Topology;

/// Lemma 1: the destinations a node routes *upward* form a subset of the
/// arithmetic sequence `sum(b_i * W_{i-1}) + t * W_l`.
#[test]
fn lemma1_upward_destinations_are_arithmetic() {
    // The lemma speaks about destinations whose traffic actually climbs
    // through the node (LFT entries alone cover destinations that never
    // arrive there). Trace real flows and collect, per switch, the
    // destinations seen on its up-going ports.
    let topo = Topology::build(catalog::nodes_1944());
    let rt = DModK.route_healthy(&topo);
    let n = topo.num_hosts();
    let mut seen_up: std::collections::HashMap<u32, Vec<usize>> = std::collections::HashMap::new();
    for src in (0..n).step_by(13) {
        for shift in [1usize, 29, 400, 1500] {
            let dst = (src + shift) % n;
            let path = rt.trace(&topo, src, dst).unwrap();
            for ch in &path.channels {
                if ch.direction() == ftree_topology::Direction::Up {
                    let (node, _) = topo.channel_source(*ch);
                    if !topo.node(node).is_host() {
                        seen_up.entry(node.0).or_default().push(dst);
                    }
                }
            }
        }
    }
    assert!(!seen_up.is_empty());
    for (sw, dsts) in seen_up {
        let node = ftree_topology::NodeId(sw);
        let seq = ftree_core::dmodk::lemma1_sequence(&topo, node, n);
        let set: std::collections::HashSet<usize> = seq.into_iter().collect();
        for dst in dsts {
            assert!(
                set.contains(&dst),
                "{}: dst {dst} outside lemma-1 sequence",
                topo.node_name(node)
            );
        }
    }
}

/// Lemma 2: any contiguous window of `w_{l+1} * p_{l+1}` consecutive
/// entries of a node's destination sequence maps to all distinct up-ports
/// (cyclically).
#[test]
fn lemma2_contiguous_windows_use_distinct_ports() {
    let topo = Topology::build(catalog::nodes_324());
    let spec = topo.spec();
    for level in 0..topo.height() {
        let ups = spec.up_ports(level) as usize;
        if ups == 0 {
            continue;
        }
        let step = spec.w_prefix(level);
        // Walk several windows of the lemma-1 sequence (base 0 node).
        for start in [0usize, 3, 7, 11] {
            let mut ports = std::collections::HashSet::new();
            for t in start..start + ups {
                let j = (t * step) % topo.num_hosts();
                ports.insert(dmodk_up_port(&topo, level, j));
            }
            assert_eq!(
                ports.len(),
                ups,
                "level {level} window at {start}: ports collide"
            );
        }
    }
}

/// Lemma 3: the wrap-around destination (index past the last) reuses the
/// first destination's up-port, so windows crossing the wrap stay
/// non-overlapping on RLFTs.
#[test]
fn lemma3_wraparound_is_port_aligned() {
    for spec in [
        catalog::nodes_324(),
        catalog::nodes_1944(),
        catalog::nodes_128(),
    ] {
        let topo = Topology::build(spec);
        let n = topo.num_hosts();
        for level in 0..topo.height() {
            if topo.spec().up_ports(level) == 0 {
                continue;
            }
            let step = topo.spec().w_prefix(level);
            let count = n / step; // entries in the lemma-1 sequence
            let first = dmodk_up_port(&topo, level, 0);
            let past_last = dmodk_up_port(&topo, level, (count * step) % n);
            assert_eq!(
                first,
                past_last,
                "{}: level {level} wrap not aligned",
                topo.spec()
            );
        }
    }
}

/// Lemma 4: in any Shift stage, at most `K` destinations are routed up
/// through a given switch (below the top level).
#[test]
fn lemma4_at_most_k_destinations_up_per_switch() {
    let topo = Topology::build(catalog::nodes_1944());
    let rt = DModK.route_healthy(&topo);
    let n = topo.num_hosts();
    let k = 18usize;
    for shift in [1usize, 17, 324, 971] {
        // Count, per switch, the distinct destinations of flows that climb
        // through it.
        let mut per_switch: std::collections::HashMap<u32, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        for src in 0..n {
            let dst = (src + shift) % n;
            let path = rt.trace(&topo, src, dst).unwrap();
            for ch in &path.channels {
                if ch.direction() == ftree_topology::Direction::Up {
                    let (node, _) = topo.channel_source(*ch);
                    if !topo.node(node).is_host() {
                        per_switch.entry(node.0).or_default().insert(dst);
                    }
                }
            }
        }
        for (sw, dsts) in per_switch {
            assert!(
                dsts.len() <= k,
                "shift {shift}: switch {sw} routes {} destinations upward",
                dsts.len()
            );
        }
    }
}

/// Lemma 5: all traffic toward a destination converges on one top switch.
#[test]
fn lemma5_single_top_switch_per_destination() {
    let topo = Topology::build(catalog::nodes_128());
    let rt = DModK.route_healthy(&topo);
    let n = topo.num_hosts();
    let top = topo.height();
    for dst in (0..n).step_by(5) {
        let mut tops = std::collections::HashSet::new();
        for src in 0..n {
            if src == dst {
                continue;
            }
            for node in rt.trace(&topo, src, dst).unwrap().nodes {
                if topo.node(node).level as usize == top {
                    tops.insert(node);
                }
            }
        }
        assert!(tops.len() <= 1, "dst {dst}: {} top switches", tops.len());
    }
}

/// Lemma 6: each top-level switch passes traffic for exactly `2K`
/// destinations.
#[test]
fn lemma6_top_switches_carry_2k_destinations() {
    for (spec, k) in [(catalog::nodes_128(), 8usize), (catalog::nodes_324(), 18)] {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        let n = topo.num_hosts();
        let mut per_top: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
        for dst in 0..n {
            let src = (dst + topo.spec().m_prefix(topo.height() - 1)) % n;
            for node in rt.trace(&topo, src, dst).unwrap().nodes {
                if topo.node(node).level as usize == topo.height() {
                    *per_top.entry(node.0).or_default() += 1;
                }
            }
        }
        assert_eq!(per_top.len(), topo.spec().nodes_at_level(topo.height()));
        for (&sw, &count) in &per_top {
            assert_eq!(count, 2 * k, "{}: top switch {sw}", topo.spec());
        }
    }
}
