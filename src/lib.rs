//! # ftree — contention-free fat-tree routing for MPI global collectives
//!
//! Facade crate re-exporting the whole workspace. See the individual crates:
//!
//! - [`topology`] — PGFT / XGFT / RLFT fat-tree construction ([`ftree_topology`])
//! - [`collectives`] — collective permutation sequences ([`ftree_collectives`])
//! - [`core`] — D-Mod-K routing, node orderings, job planner ([`ftree_core`])
//! - [`analysis`] — hot-spot-degree analytic model ([`ftree_analysis`])
//! - [`sim`] — packet-level and fluid network simulators ([`ftree_sim`])
//! - [`mpi`] — executable MPI collective algorithms ([`ftree_mpi`])
//! - [`obs`] — metrics, flight recorder, Chrome trace export ([`ftree_obs`])

pub use ftree_analysis as analysis;
pub use ftree_collectives as collectives;
pub use ftree_core as core;
pub use ftree_mpi as mpi;
pub use ftree_obs as obs;
pub use ftree_sim as sim;
pub use ftree_topology as topology;
