//! # ftree — contention-free fat-tree routing for MPI global collectives
//!
//! Facade crate re-exporting the whole workspace. See the individual crates:
//!
//! - [`topology`] — PGFT / XGFT / RLFT fat-tree construction ([`ftree_topology`])
//! - [`collectives`] — collective permutation sequences ([`ftree_collectives`])
//! - [`core`] — D-Mod-K routing, node orderings, job planner ([`ftree_core`])
//! - [`analysis`] — hot-spot-degree analytic model ([`ftree_analysis`])
//! - [`sim`] — packet-level and fluid network simulators ([`ftree_sim`])
//! - [`mpi`] — executable MPI collective algorithms ([`ftree_mpi`])
//! - [`obs`] — metrics, flight recorder, Chrome trace export ([`ftree_obs`])

pub use ftree_analysis as analysis;
pub use ftree_collectives as collectives;
pub use ftree_core as core;
pub use ftree_mpi as mpi;
pub use ftree_obs as obs;
pub use ftree_sim as sim;
pub use ftree_topology as topology;

/// One-stop imports for the common workflow: build a fabric, route it
/// (healthy or degraded), order the ranks, analyze the collective, and
/// simulate it.
///
/// ```
/// use ftree::prelude::*;
///
/// let topo = Topology::build(catalog::fig4_pgft_16());
/// let job = Job::contention_free(&topo);
/// let r = sequence_hsd(&topo, &job.routing, &job.order, &Cps::Shift,
///                      SequenceOptions::default()).unwrap();
/// assert!(r.congestion_free);
/// ```
pub mod prelude {
    pub use ftree_analysis::{
        check_invariants, routing_quality, sequence_hsd, stage_hsd, sweep_check, InvariantReport,
        RoutingQuality, SequenceOptions,
    };
    pub use ftree_collectives::{Cps, PermutationSequence, PortSpace, TopoAwareRd};
    pub use ftree_core::{
        builtin_engines, Allocator, DModK, Dmodc, Job, MinHopGreedy, NodeOrder, RandomUpstream,
        Reachability, Router, RoutingAlgo, SubnetManager,
    };
    pub use ftree_sim::{
        run_fluid, FabricLifecycle, PacketSim, Progression, SimConfig, TrafficPlan,
    };
    pub use ftree_topology::rlft::{catalog, check_rlft, require_rlft};
    pub use ftree_topology::{
        ChaosEvent, ChaosGen, ChaosSchedule, DegradeEvent, FaultSchedule, LinkFailures, PgftSpec,
        PortRef, RouteError, RoutingTable, Topology,
    };
}
