#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the extension
# experiments, teeing each run into results/. Pass --csv to emit
# machine-readable tables; pass --full to the fig2 line manually for the
# 1944-node configuration.
#
# Every binary also writes a machine-readable results/<name>.json
# (schema: {bench, topology, params, metrics, wall_ms}); this script
# folds them into results/BENCH_summary.json at the end.
set -euo pipefail
cd "$(dirname "$0")"

mkdir -p results
cargo build --release -p ftree-bench

EXTRA_ARGS=("$@")
BENCHES=()
run() {
    local name=$1
    echo "== $name =="
    "./target/release/$name" "${EXTRA_ARGS[@]}" 2>/dev/null | tee "results/$name.txt"
    BENCHES+=("$name")
    echo
}

# The paper roster (figures, tables, routing quality) runs through the
# campaign batch driver: one process sharing a fabric cache across cases,
# per-case text dropped in results/<name>.txt exactly where the old
# per-binary tee put it, per-case JSON at its usual path.
PAPER_CASES=(fig1 fig2 fig3 fig4 fig5 table1 table2 table3 routing_quality)
echo "== campaign --cases (paper roster) =="
./target/release/campaign \
    --cases "$(IFS=,; echo "${PAPER_CASES[*]}")" \
    --text-dir results --artifacts "${EXTRA_ARGS[@]}" 2>/dev/null
BENCHES+=("${PAPER_CASES[@]}")
echo

run ring_adversarial
run validate_full_bw
run ablations
run failures
run jitter
run collective_time
run perf
run chaos

# Parameter-grid campaign: the default nodes_324 spec, every fabric built
# once and shared across cells, NDJSON rows streamed to
# results/BENCH_simcampaign.ndjson. --compare re-runs the grid with
# per-cell rebuilds to prove the rows are bit-identical and record the
# sharing speedup ftree-report gates against the committed baseline.
echo "== campaign (grid) =="
./target/release/campaign --fresh --compare 2>/dev/null |
    tee results/campaign.txt
echo

# Packet-engine smoke: rebuilt calendar engine vs the preserved serial
# oracle on the random-order gate workload (results/BENCH_packet.json).
# Runs outside run() — it takes its own flag.
echo "== perf --packet =="
./target/release/perf --packet 2>/dev/null | tee results/perf_packet.txt
echo

# Fluid-solver benchmark: rebuilt incremental max-min solver vs the
# preserved dense-rescan oracle on nodes_1728, plus the 323-stage shift
# flagship at 11664 hosts (results/BENCH_fluid.json). Runs outside
# run() — it takes its own flag.
echo "== perf --fluid =="
./target/release/perf --fluid 2>/dev/null | tee results/perf_fluid.txt
echo

# Deep-observability chaos cell: Perfetto trace with nested spans,
# per-channel utilization heatmap, and the contention attribution report
# (results/chaos_deep*). Runs outside run() — it takes its own flag.
echo "== chaos --deep-obs =="
./target/release/chaos --deep-obs 2>/dev/null | tee results/chaos_deep.txt
echo

# Aggregate the per-bench JSON results into one summary document.
summary=results/BENCH_summary.json
json_files=()
for name in "${BENCHES[@]}"; do
    [[ -f "results/$name.json" ]] && json_files+=("results/$name.json")
done
# perf, routing_quality and chaos write under BENCH_-prefixed names.
[[ -f results/BENCH_perf.json ]] && json_files+=(results/BENCH_perf.json)
[[ -f results/BENCH_packet.json ]] && json_files+=(results/BENCH_packet.json)
[[ -f results/BENCH_fluid.json ]] && json_files+=(results/BENCH_fluid.json)
[[ -f results/BENCH_routing_quality.json ]] &&
    json_files+=(results/BENCH_routing_quality.json)
[[ -f results/BENCH_chaos.json ]] && json_files+=(results/BENCH_chaos.json)
[[ -f results/BENCH_simcampaign.json ]] &&
    json_files+=(results/BENCH_simcampaign.json)
if ((${#json_files[@]})); then
    if command -v jq >/dev/null 2>&1; then
        jq -s '{generated_by: "run_all_experiments.sh", benches: .}' \
            "${json_files[@]}" > "$summary"
    else
        {
            printf '{"generated_by": "run_all_experiments.sh", "benches": [\n'
            sep=""
            for f in "${json_files[@]}"; do
                printf '%s' "$sep"
                cat "$f"
                sep=$',\n'
            done
            printf '\n]}\n'
        } > "$summary"
    fi
    echo "bench summary written to $summary (${#json_files[@]} benches)"
fi

# Fold everything into the provenance-stamped regression ledger and
# Markdown report (results/LEDGER.ndjson, results/REPORT.md); fails the
# script if any regression gate trips.
echo "== ftree-report =="
./target/release/ftree-report --check

echo "all experiment outputs written to results/"
