#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the extension
# experiments, teeing each run into results/. Pass --csv to emit
# machine-readable tables; pass --full to the fig2 line manually for the
# 1944-node configuration.
set -euo pipefail
cd "$(dirname "$0")"

mkdir -p results
cargo build --release -p ftree-bench

EXTRA_ARGS=("$@")
run() {
    local name=$1
    echo "== $name =="
    "./target/release/$name" "${EXTRA_ARGS[@]}" 2>/dev/null | tee "results/$name.txt"
    echo
}

run fig1
run fig2
run fig3
run fig4
run fig5
run table1
run table2
run table3
run ring_adversarial
run validate_full_bw
run ablations
run failures
run jitter
run collective_time

echo "all experiment outputs written to results/"
