//! Utility-cluster scenario: several MPI jobs share one fat-tree, each
//! running its own collectives at its own pace, with zero cross-job
//! interference.
//!
//! Demonstrates the allocator's isolation policy (whole leaves for
//! spanning jobs, packed shared leaves for small ones) and verifies with
//! the analytic model that the merged traffic of all jobs — at
//! *independently chosen* collective stages — keeps every link at HSD 1.
//!
//! Run: `cargo run --release --example multi_job`

use ftree::prelude::*;

fn main() {
    let topo = Topology::build(catalog::nodes_324());
    let rt = RoutingAlgo::DModK.route(&topo);
    let mut alloc = Allocator::new(&topo);

    println!(
        "utility cluster: {} ({} hosts, {} hosts/leaf)\n",
        topo.spec(),
        topo.num_hosts(),
        topo.spec().m(0)
    );

    // A realistic mix: two production jobs, one mid-size, two small ones.
    let requests = [
        ("chem-md", 108usize),
        ("cfd", 90),
        ("genomics", 36),
        ("viz", 8),
        ("dev", 4),
    ];
    let mut jobs = Vec::new();
    for (name, ranks) in requests {
        match alloc.allocate(ranks) {
            Ok(a) => {
                println!(
                    "allocated {name:9} {ranks:4} ranks -> {} ports ({}) first port {}",
                    a.ports.len(),
                    if a.spans_leaves {
                        "whole leaves"
                    } else {
                        "shared leaf"
                    },
                    a.ports[0]
                );
                jobs.push((name, a));
            }
            Err(e) => println!("allocation of {name} failed: {e}"),
        }
    }
    println!(
        "\nfree capacity: {} leaves whole, {} ports total",
        alloc.free_leaves(),
        alloc.free_ports()
    );

    // Each job runs its own Shift all-to-all; stages progress independently
    // (no cross-job synchronization). Merge one snapshot of everyone's
    // in-flight traffic and measure global contention.
    let n_total = topo.num_hosts() as u32;
    let stage_picks = [13usize, 2, 31, 1, 0];
    let mut merged = Vec::new();
    for ((name, a), pick) in jobs.iter().zip(stage_picks) {
        let order = NodeOrder::topology_subset(a.ports.clone());
        let seq = PortSpace::new(Cps::Shift, n_total, a.ports.clone());
        let n = seq.num_ranks();
        let stage = seq.stage(n, pick % seq.num_stages(n));
        let flows = order.port_flows(&stage);
        println!(
            "{name:9} at stage {pick:3}: {} in-flight messages",
            flows.len()
        );
        merged.extend(flows);
    }
    let hsd = stage_hsd(&topo, &rt, &merged).unwrap();
    println!(
        "\nmerged traffic of all jobs: {} flows, max HSD = {} -> {}",
        merged.len(),
        hsd.max,
        if hsd.max <= 1 {
            "fully isolated, every job at full bandwidth"
        } else {
            "cross-job interference!"
        }
    );
}
