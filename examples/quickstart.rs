//! Quickstart: plan a contention-free MPI job on a real-life fat-tree.
//!
//! Builds the paper's 324-node cluster (36-port switches), applies D-Mod-K
//! routing and topology node ordering, and verifies that the all-to-all
//! Shift pattern — the superset of every unidirectional collective — is
//! congestion-free, while a random placement is not.
//!
//! Run: `cargo run --release --example quickstart`

use ftree::prelude::*;

fn main() {
    // 1. Describe and build the fabric: PGFT(2; 18,18; 1,9; 1,2) — 324
    //    hosts, 18 leaf switches, 9 spines with 2 parallel cables each.
    let spec = catalog::nodes_324();
    let k = require_rlft(&spec).expect("catalog trees satisfy the RLFT restrictions");
    let topo = Topology::build(spec);
    println!(
        "fabric: {} — {} hosts, {} switches (arity K={k}), {} cables",
        topo.spec(),
        topo.num_hosts(),
        topo.num_nodes() - topo.num_hosts(),
        topo.num_links()
    );

    // 2. The paper's recipe: D-Mod-K routing + topology rank order.
    let job = Job::contention_free(&topo);
    println!(
        "routing: {} ({} LFT entries per switch)",
        job.routing.algorithm,
        topo.num_hosts()
    );

    // 3. Verify the headline property: every Shift stage is congestion-free.
    let opts = SequenceOptions { max_stages: 64 };
    let good = sequence_hsd(&topo, &job.routing, &job.order, &Cps::Shift, opts).unwrap();
    println!(
        "Shift CPS with topology order: worst hot-spot degree = {} (congestion-free: {})",
        good.worst, good.congestion_free
    );

    // 4. Contrast with a random MPI rank placement on the same fabric.
    let random = NodeOrder::random(&topo, 42);
    let bad_job = Job::new(&topo, RoutingAlgo::DModK, random);
    let bad = sequence_hsd(&topo, &bad_job.routing, &bad_job.order, &Cps::Shift, opts).unwrap();
    println!(
        "Shift CPS with random order:   avg max HSD = {:.2} (up to {} flows on one link)",
        bad.avg_max, bad.worst
    );

    // 5. Bidirectional collectives need the Sec. VI topology-aware sequence.
    let rd = job.recommended_bidirectional();
    let n = topo.num_hosts() as u32;
    let smart = sequence_hsd(&topo, &job.routing, &job.order, &rd, opts).unwrap();
    println!(
        "topology-aware recursive doubling ({} stages for {} ranks): worst HSD = {}",
        rd.num_stages(n),
        n,
        smart.worst
    );
}
