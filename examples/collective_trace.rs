//! Trace a live MPI collective, identify its permutation sequence, and
//! predict its network behaviour — the paper's CPS decomposition end to
//! end.
//!
//! Runs a real allreduce (recursive doubling) on 128 ranks through the
//! `ftree-mpi` engine, verifies the numerical result, extracts the traced
//! CPS, then maps the very same stages onto the 128-node RLFT to show the
//! contention difference between rank placements.
//!
//! Run: `cargo run --release --example collective_trace`

use ftree::collectives::identify;
use ftree::mpi::data::{reduce_world, verify_allreduce};
use ftree::mpi::reductions::recursive_doubling_allreduce;
use ftree::prelude::*;

fn main() {
    let n = 128usize;
    let b = 8usize;

    // 1. Execute the collective on live data.
    let mut world = reduce_world(n, b);
    recursive_doubling_allreduce(&mut world);
    verify_allreduce(&world, b, 0..n);
    println!("allreduce over {n} ranks: result verified (element-wise sums correct)");

    // 2. The decomposition: content verified above; now the pattern.
    let trace = world.trace().to_vec();
    let cps = identify(&trace, n as u32);
    println!(
        "traced {} stages; identified CPS: {}",
        trace.len(),
        cps.map_or("<unknown>", |c| c.label())
    );

    // 3. Map the traced stages onto the 128-node fat-tree under two rank
    //    placements and report per-stage contention.
    let topo = Topology::build(catalog::nodes_128());
    let job = Job::contention_free(&topo);
    let random = Job::new(&topo, RoutingAlgo::DModK, NodeOrder::random(&topo, 7));

    println!("\nper-stage max hot-spot degree of the traced collective:");
    println!("stage | topology order | random order");
    for (s, stage) in trace.iter().enumerate() {
        let good = stage_hsd(&topo, &job.routing, &job.order.port_flows(stage)).unwrap();
        let bad = stage_hsd(&topo, &random.routing, &random.order.port_flows(stage)).unwrap();
        println!("{s:>5} | {:>14} | {:>12}", good.max, bad.max);
    }
    println!(
        "\nEven the good placement congests on plain recursive doubling stages — \
         that is why Sec. VI replaces it with the topology-aware sequence \
         (see `cargo run -p ftree-bench --bin ablations`)."
    );
}
