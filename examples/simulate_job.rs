//! Simulate an MPI job's network behaviour before running it: packet-level
//! what-if analysis of rank placement on a production-shaped cluster.
//!
//! Scenario from the paper's introduction: a 324-node job alternates
//! all-to-all (Shift) phases with allreduce phases. How much wall-clock
//! does the operator lose to a careless rank placement?
//!
//! Run: `cargo run --release --example simulate_job [--bytes N]`

use ftree::prelude::*;

fn parse_bytes() -> u64 {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--bytes" {
            if let Some(v) = args.next().and_then(|v| v.parse().ok()) {
                return v;
            }
        }
    }
    128 << 10
}

fn main() {
    let bytes = parse_bytes();
    let topo = Topology::build(catalog::nodes_324());
    let cfg = SimConfig::default();
    println!(
        "job: alternating all-to-all + allreduce phases on {} ({} hosts), {} KiB messages\n",
        topo.spec(),
        topo.num_hosts(),
        bytes >> 10
    );

    // Build the phase schedule once: 12 sampled Shift stages, then the
    // topology-aware recursive doubling (the allreduce pattern).
    let build_plan = |order: &NodeOrder| -> TrafficPlan {
        let n = topo.num_hosts() as u32;
        let rd = TopoAwareRd::new(topo.spec().ms().to_vec());
        let mut stages = Vec::new();
        for s in (0..Cps::Shift.num_stages(n)).step_by(27) {
            stages.push(order.port_flows(&Cps::Shift.stage(n, s)));
        }
        for s in 0..rd.num_stages(n) {
            stages.push(order.port_flows(&rd.stage(n, s)));
        }
        TrafficPlan::uniform(stages, bytes, Progression::Asynchronous)
    };

    let mut results = Vec::new();
    for (label, order) in [
        ("topology order (paper)", NodeOrder::topology(&topo)),
        ("random placement", NodeOrder::random(&topo, 3)),
        ("adversarial placement", NodeOrder::adversarial_ring(&topo)),
    ] {
        let job = Job::new(&topo, RoutingAlgo::DModK, order);
        let plan = build_plan(&job.order);
        let r = PacketSim::new(&topo, &job.routing, cfg, &plan).run();
        println!(
            "{label:24} makespan {:8.2} ms   normalized BW {:.3}   mean msg latency {:7.1} us",
            r.makespan as f64 / 1e9,
            r.normalized_bw,
            r.mean_latency / 1e6
        );
        results.push((label, r.makespan));
    }
    let base = results[0].1 as f64;
    println!();
    for (label, makespan) in &results[1..] {
        println!(
            "{label} costs {:.2}x the wall-clock of the topology order",
            *makespan as f64 / base
        );
    }
}
