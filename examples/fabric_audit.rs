//! Audit a discovered fabric against its intended design — the
//! cable-verification workflow a subnet manager runs after installation.
//!
//! Without arguments the example demonstrates the full loop on the
//! 128-node catalog tree: dump the intended cabling, corrupt one cable
//! (simulating a mis-plugged installation), and show how the verify-parser
//! pinpoints it; then fail a cable at runtime and print the fault-aware
//! LFT delta.
//!
//! With an argument: `cargo run --release --example fabric_audit -- <file>`
//! verify-parses your own cable-list dump.

use ftree::prelude::*;
use ftree::topology::io;

fn main() {
    if let Some(path) = std::env::args().nth(1) {
        let text = std::fs::read_to_string(&path).expect("readable cable list");
        match io::parse_text(&text) {
            Ok(topo) => println!(
                "{path}: OK — {} verified as {} ({} cables)",
                path,
                topo.spec(),
                topo.num_links()
            ),
            Err(e) => {
                eprintln!("{path}: AUDIT FAILED — {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    // 1. The intended design and its cable list.
    let topo = Topology::build(catalog::nodes_128());
    let dump = io::write_text(&topo);
    println!(
        "intended fabric: {} — {} cables dumped",
        topo.spec(),
        topo.num_links()
    );

    // 2. Simulate a mis-plugged cable: swap one line's parent port.
    let corrupted: String = dump
        .lines()
        .enumerate()
        .map(|(i, l)| {
            if i == 10 {
                let mut parts: Vec<String> = l.split_whitespace().map(String::from).collect();
                let r: u32 = parts[4].parse().unwrap();
                parts[4] = format!("{}", (r + 1) % 16);
                parts.join(" ")
            } else {
                l.to_string()
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    match io::parse_text(&corrupted) {
        Ok(_) => println!("corrupted dump unexpectedly verified?!"),
        Err(e) => println!("mis-plug detected by the audit: {e}"),
    }

    // 3. Runtime failure: kill a leaf up-cable, reroute, show the LFT delta.
    let healthy = DModK.route_healthy(&topo);
    let mut failures = LinkFailures::none(&topo);
    let leaf3 = topo.node_at(1, 3).unwrap();
    failures.fail_up_port(&topo, leaf3, 5).unwrap();
    let rerouted = DModK.route(&topo, &failures).unwrap();
    rerouted
        .validate(&topo, usize::MAX)
        .expect("healed fabric routes everything");

    let mut changed = Vec::new();
    for sw in topo.switches() {
        for dst in 0..topo.num_hosts() {
            let a: Option<PortRef> = healthy.egress(sw, dst);
            let b: Option<PortRef> = rerouted.egress(sw, dst);
            if a != b {
                changed.push((topo.node_name(sw), dst, a, b));
            }
        }
    }
    println!(
        "\nfailed cable: {} up-port 5 -> {} LFT entries rerouted:",
        topo.node_name(leaf3),
        changed.len()
    );
    for (name, dst, from, to) in changed.iter().take(8) {
        println!("  {name} dst {dst:3}: {from:?} -> {to:?}");
    }
    if changed.len() > 8 {
        println!("  ... and {} more", changed.len() - 8);
    }
    println!(
        "\nall other {} entries untouched — minimal-deviation healing.",
        topo.num_hosts() * (topo.num_nodes() - topo.num_hosts()) - changed.len()
    );
}
