//! A subnet-manager-like CLI: describe any PGFT on the command line, get
//! RLFT validation, routing tables, and a contention report — the workflow
//! an InfiniBand fabric operator would run before placing a job.
//!
//! Run: `cargo run --release --example subnet_manager -- "PGFT(2; 18,18; 1,9; 1,2)" shift`
//!
//! Arguments: `<spec> [collective]` where collective is one of
//! `shift|ring|dissemination|tournament|binomial|recdbl|rechlv|topoaware`
//! (default `shift`). Add `--dump` to print the full cable list.

use ftree::prelude::*;
use ftree::topology::io;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let spec_str = args
        .get(1)
        .map(String::as_str)
        .unwrap_or("PGFT(2; 18,18; 1,9; 1,2)");
    let collective = args
        .iter()
        .skip(2)
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("shift");
    let dump = args.iter().any(|a| a == "--dump");

    // 1. Parse and audit the fabric description.
    let spec = match io::parse_spec(spec_str) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot parse `{spec_str}`: {e}");
            std::process::exit(1);
        }
    };
    let report = check_rlft(&spec);
    println!("fabric:      {}", spec.canonical_name());
    println!("hosts:       {}", spec.num_hosts());
    println!("switches:    {}", spec.num_switches());
    match report.k() {
        Some(k) => println!("RLFT check:  ok (switch arity K = {k})"),
        None => {
            println!("RLFT check:  VIOLATED — D-Mod-K guarantees do not apply:");
            for v in &report.violations {
                println!("             - {v}");
            }
        }
    }

    // 2. Build, route, validate reachability.
    let topo = Topology::build(spec);
    let job = Job::contention_free(&topo);
    let checked = job
        .routing
        .validate(&topo, 20_000)
        .expect("routing must reach every destination");
    println!(
        "routing:     {} ({checked} src/dst pairs validated)",
        job.routing.algorithm
    );

    if dump {
        print!("{}", io::write_text(&topo));
    }

    // 3. Contention report for the requested collective.
    let topo_aware;
    let seq: &(dyn PermutationSequence + Sync) = match collective {
        "shift" => &Cps::Shift,
        "ring" => &Cps::Ring,
        "dissemination" => &Cps::Dissemination,
        "tournament" => &Cps::Tournament,
        "binomial" => &Cps::Binomial,
        "recdbl" => &Cps::RecursiveDoubling,
        "rechlv" => &Cps::RecursiveHalving,
        "topoaware" => {
            topo_aware = TopoAwareRd::new(topo.spec().ms().to_vec());
            &topo_aware
        }
        other => {
            eprintln!("unknown collective `{other}`");
            std::process::exit(1);
        }
    };
    let r = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        seq,
        SequenceOptions { max_stages: 128 },
    )
    .expect("routable");
    println!(
        "collective:  {} ({} stages, {} evaluated)",
        seq.name(),
        seq.num_stages(topo.num_hosts() as u32),
        r.per_stage_max.len()
    );
    println!(
        "contention:  worst HSD = {}, avg max HSD = {:.2} -> {}",
        r.worst,
        r.avg_max,
        if r.congestion_free {
            "CONGESTION-FREE at full bandwidth"
        } else {
            "will lose bandwidth to hot spots"
        }
    );
}
