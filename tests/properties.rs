//! Property-based cross-crate tests: Theorems 1 and 2 over *randomly
//! generated* real-life fat-trees, not just the catalog.

use proptest::prelude::*;

use ftree::analysis::{sequence_hsd, stage_hsd, SequenceOptions};
use ftree::collectives::{Cps, PermutationSequence, PortSpace, TopoAwareRd};
use ftree::core::Job;
use ftree::topology::rlft::require_rlft;
use ftree::topology::{PgftSpec, Topology};

/// Strategy generating valid random RLFT specs (constant CBB, single host
/// cables, constant radix 2K, full top level).
fn rlft_spec() -> impl Strategy<Value = PgftSpec> {
    let k_choices = prop_oneof![Just(2u32), Just(4), Just(6)];
    (k_choices, 0..3usize, 0..3usize, prop::bool::ANY).prop_map(|(k, d2i, d3i, three_level)| {
        let divisors: Vec<u32> = (1..=k).filter(|d| k % d == 0).collect();
        let d2 = divisors[d2i % divisors.len()];
        if !three_level {
            // 2-level: m = (K, 2K/d2), w = (1, K/d2), p = (1, d2).
            let m2 = 2 * k / d2;
            PgftSpec::from_slices(&[k, m2.max(1)], &[1, k / d2], &[1, d2]).unwrap()
        } else {
            // 3-level: internal level keeps m2*p2 = K, top gets 2K.
            let d3 = divisors[d3i % divisors.len()];
            let m2 = k / d2;
            if m2 == 0 {
                return PgftSpec::from_slices(&[k, 2 * k], &[1, k], &[1, 1]).unwrap();
            }
            let m3 = 2 * k / d3;
            PgftSpec::from_slices(
                &[k, m2.max(1), m3.max(1)],
                &[1, k / d2, k / d3],
                &[1, d2, d3],
            )
            .unwrap()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 1 + 2 on random RLFTs: every sampled Shift stage has HSD 1.
    #[test]
    fn random_rlfts_are_contention_free_for_shift(spec in rlft_spec(), stage_seed in 0usize..1000) {
        prop_assume!(require_rlft(&spec).is_ok());
        prop_assume!(spec.num_hosts() <= 1024);
        let topo = Topology::build(spec);
        let job = Job::contention_free(&topo);
        let n = topo.num_hosts() as u32;
        prop_assume!(n >= 2);
        let s = stage_seed % Cps::Shift.num_stages(n);
        let stage = Cps::Shift.stage(n, s);
        let hsd = stage_hsd(&topo, &job.routing, &job.order.port_flows(&stage)).unwrap();
        prop_assert_eq!(hsd.max, 1, "stage {} on {}", s, topo.spec());
    }

    /// Theorem 3 on random RLFTs: the topology-aware sequence is free.
    #[test]
    fn random_rlfts_are_contention_free_for_topo_aware_rd(spec in rlft_spec()) {
        prop_assume!(require_rlft(&spec).is_ok());
        prop_assume!((4..=1024).contains(&spec.num_hosts()));
        let topo = Topology::build(spec);
        let job = Job::contention_free(&topo);
        let seq = TopoAwareRd::new(topo.spec().ms().to_vec());
        let r = sequence_hsd(&topo, &job.routing, &job.order, &seq,
                             SequenceOptions::default()).unwrap();
        prop_assert!(r.congestion_free, "worst {} on {}", r.worst, topo.spec());
    }

    /// Port-space partial jobs stay free for arbitrary random exclusions.
    #[test]
    fn random_partial_jobs_stay_free(spec in rlft_spec(),
                                     mask in prop::collection::vec(prop::bool::ANY, 16),
                                     stage_seed in 0usize..1000) {
        prop_assume!(require_rlft(&spec).is_ok());
        prop_assume!((8..=512).contains(&spec.num_hosts()));
        let topo = Topology::build(spec);
        let n = topo.num_hosts() as u32;
        let ports: Vec<u32> = (0..n)
            .filter(|&p| mask[(p as usize) % mask.len()])
            .collect();
        prop_assume!(ports.len() >= 2);
        let seq = PortSpace::new(Cps::Shift, n, ports.clone());
        let job = Job::contention_free_partial(&topo, ports);
        let n_ranks = job.num_ranks();
        let s = stage_seed % seq.num_stages(n_ranks);
        let stage = seq.stage(n_ranks, s);
        let hsd = stage_hsd(&topo, &job.routing, &job.order.port_flows(&stage)).unwrap();
        prop_assert!(hsd.max <= 1, "stage {} on {}", s, topo.spec());
    }

    /// All-pairs reachability with up*/down* paths on random RLFTs.
    #[test]
    fn random_rlfts_route_everything(spec in rlft_spec()) {
        prop_assume!(spec.num_hosts() <= 512);
        let topo = Topology::build(spec);
        let job = Job::contention_free(&topo);
        job.routing.validate(&topo, 4000).unwrap();
    }
}
