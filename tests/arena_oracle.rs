//! Oracle: the arena-backed HSD engine is bit-identical to the preserved
//! trace-per-flow serial engine (`ftree::analysis::reference`) — per stage,
//! per sequence and per sweep; with the arena fully populated and with the
//! size gate forcing the on-demand fallback; on healthy and degraded
//! fabrics.

use ftree::analysis::reference;
use ftree::analysis::{
    random_order_sweep, sequence_hsd, sequence_hsd_cached, LinkLoads, RouteCache, SequenceOptions,
    StageScratch,
};
use ftree::collectives::{Cps, PermutationSequence};
use ftree::core::{DModK, NodeOrder, Router};
use ftree::topology::rlft::catalog;
use ftree::topology::{PgftSpec, Topology};

fn oracle_topologies() -> Vec<(&'static str, PgftSpec)> {
    vec![
        ("fig4_pgft_16", catalog::fig4_pgft_16()),
        ("nodes_128", catalog::nodes_128()),
        // 3-level RLFT (16 hosts over three switch levels).
        ("rlft3_k2", catalog::rlft3_full(2)),
    ]
}

const OPTS: SequenceOptions = SequenceOptions { max_stages: 16 };

#[test]
fn stage_hsd_matches_reference_engine() {
    for (name, spec) in oracle_topologies() {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        let order = NodeOrder::random(&topo, 7);
        let n = order.num_ranks() as u32;
        let cached = RouteCache::new(&topo, &rt).unwrap();
        assert!(cached.is_cached(), "{name}: arena should fit the budget");
        let lazy = RouteCache::with_budget(&topo, &rt, 0).unwrap();
        assert!(!lazy.is_cached(), "{name}: zero budget must gate the arena");
        let mut s1 = StageScratch::for_cache(&cached);
        let mut s2 = StageScratch::for_cache(&lazy);
        for stage_idx in 0..(n as usize - 1).min(8) {
            let flows = order.port_flows(&Cps::Shift.stage(n, stage_idx));
            let want = reference::stage_hsd(&topo, &rt, &flows).unwrap();
            assert_eq!(
                ftree::analysis::stage_hsd(&topo, &rt, &flows).unwrap(),
                want,
                "{name} stage {stage_idx}: walk-based compute diverged"
            );
            assert_eq!(
                cached.stage_hsd(&flows, &mut s1).unwrap(),
                want,
                "{name} stage {stage_idx}: arena engine diverged"
            );
            assert_eq!(
                lazy.stage_hsd(&flows, &mut s2).unwrap(),
                want,
                "{name} stage {stage_idx}: gated fallback diverged"
            );
        }
    }
}

#[test]
fn sequence_hsd_matches_reference_engine() {
    for (name, spec) in oracle_topologies() {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        // Partially populated job: every other host, preserving positions.
        let partial = NodeOrder::topology_subset((0..topo.num_hosts() as u32).step_by(2).collect());
        for order in [
            NodeOrder::topology(&topo),
            NodeOrder::random(&topo, 42),
            partial,
        ] {
            let want = reference::sequence_hsd(&topo, &rt, &order, &Cps::Shift, OPTS).unwrap();
            let fast = sequence_hsd(&topo, &rt, &order, &Cps::Shift, OPTS).unwrap();
            assert_eq!(fast.per_stage_max, want.per_stage_max, "{name}");
            assert_eq!(fast.avg_max.to_bits(), want.avg_max.to_bits(), "{name}");
            assert_eq!(fast.worst, want.worst, "{name}");
            assert_eq!(fast.congestion_free, want.congestion_free, "{name}");

            let lazy = RouteCache::with_budget(&topo, &rt, 0).unwrap();
            let gated = sequence_hsd_cached(&lazy, &order, &Cps::Shift, OPTS).unwrap();
            assert_eq!(gated.per_stage_max, want.per_stage_max, "{name} (gated)");
            assert_eq!(
                gated.avg_max.to_bits(),
                want.avg_max.to_bits(),
                "{name} (gated)"
            );
        }
    }
}

#[test]
fn random_order_sweep_matches_reference_engine() {
    let seeds = [1u64, 2, 3, 4, 5];
    for (name, spec) in oracle_topologies() {
        let topo = Topology::build(spec);
        let rt = DModK.route_healthy(&topo);
        let want = reference::random_order_sweep(&topo, &rt, &Cps::Shift, &seeds, OPTS).unwrap();
        let fast = random_order_sweep(&topo, &rt, &Cps::Shift, &seeds, OPTS).unwrap();
        let want_bits: Vec<u64> = want.per_seed_avg_max.iter().map(|x| x.to_bits()).collect();
        let fast_bits: Vec<u64> = fast.per_seed_avg_max.iter().map(|x| x.to_bits()).collect();
        assert_eq!(fast_bits, want_bits, "{name}: per-seed averages diverged");
        assert_eq!(fast.mean.to_bits(), want.mean.to_bits(), "{name}");
        assert_eq!(fast.min.to_bits(), want.min.to_bits(), "{name}");
        assert_eq!(fast.max.to_bits(), want.max.to_bits(), "{name}");
    }
}

#[test]
fn degraded_fabric_matches_reference_engine() {
    // Sever one destination; the arena marks the pairs unroutable and the
    // partial accumulators must report exactly what compute_partial does.
    let topo = Topology::build(catalog::fig4_pgft_16());
    let mut rt = DModK.route_healthy(&topo);
    for s in topo.switches() {
        rt.clear(s, 5);
    }
    let flows: Vec<(u32, u32)> = (0..16).map(|i| (i, (i + 3) % 16)).collect();
    let (want_loads, want_dead) = LinkLoads::compute_partial(&topo, &rt, &flows).unwrap();
    for budget in [usize::MAX, 0] {
        let cache = RouteCache::with_budget(&topo, &rt, budget).unwrap();
        let mut scratch = StageScratch::for_cache(&cache);
        let dead = cache.accumulate_partial(&flows, &mut scratch).unwrap();
        assert_eq!(dead, want_dead, "budget {budget}");
        assert_eq!(scratch.counts(), want_loads.counts(), "budget {budget}");
        assert_eq!(
            scratch.summarize(),
            want_loads.summarize(),
            "budget {budget}"
        );
    }
}
