//! End-to-end pipeline: the full user journey across every crate, from a
//! textual fabric description to verified contention-free execution.

use ftree::analysis::{sequence_hsd, SequenceOptions};
use ftree::collectives::{identify, Cps};
use ftree::core::{Job, NodeOrder, RoutingAlgo};
use ftree::mpi::alltoall::pairwise_alltoall;
use ftree::mpi::data::{alltoall_world, verify_alltoall};
use ftree::sim::{PacketSim, Progression, SimConfig, TrafficPlan};
use ftree::topology::rlft::require_rlft;
use ftree::topology::{io, Topology};

#[test]
fn fabric_description_to_contention_free_execution() {
    // 1. Parse the operator's fabric description.
    let spec = io::parse_spec("PGFT(2; 8,16; 1,8; 1,1)").expect("valid spec");
    assert_eq!(spec.num_hosts(), 128);

    // 2. Audit it as a real-life fat-tree.
    let k = require_rlft(&spec).expect("catalog-grade RLFT");
    assert_eq!(k, 8);

    // 3. Materialize, route, and validate reachability.
    let topo = Topology::build(spec);
    let job = Job::contention_free(&topo);
    job.routing
        .validate(&topo, usize::MAX)
        .expect("all pairs reachable");

    // 4. Run the actual MPI collective (pairwise all-to-all) and check the
    //    data content.
    let n = topo.num_hosts();
    let b = 4;
    let mut world = alltoall_world(n, b);
    pairwise_alltoall(&mut world, b);
    verify_alltoall(&world, b);

    // 5. The traced pattern is the Shift CPS...
    let trace = world.trace().to_vec();
    assert_eq!(identify(&trace, n as u32), Some(Cps::Shift));

    // 6. ...which the analytic model certifies as congestion-free under
    //    this routing and ordering.
    let hsd = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions { max_stages: 32 },
    )
    .unwrap();
    assert!(hsd.congestion_free, "worst = {}", hsd.worst);

    // 7. And the packet-level simulator confirms line-rate delivery.
    let plan = TrafficPlan::from_cps(
        &job.order,
        &Cps::Shift,
        64 << 10,
        Progression::Asynchronous,
        8,
    );
    let sim = PacketSim::new(&topo, &job.routing, SimConfig::default(), &plan).run();
    assert!(
        sim.normalized_bw > 0.9,
        "expected full bandwidth, got {}",
        sim.normalized_bw
    );
    assert_eq!(sim.messages_delivered as usize, plan.num_messages());
}

#[test]
fn bad_placement_detected_before_execution() {
    // The operator workflow for a *bad* configuration: the analytic model
    // flags it, and the simulator quantifies the same loss — no cluster
    // time wasted.
    let topo = Topology::build(ftree::topology::rlft::catalog::nodes_128());
    let job = Job::new(&topo, RoutingAlgo::DModK, NodeOrder::random(&topo, 9));

    let hsd = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions { max_stages: 16 },
    )
    .unwrap();
    assert!(!hsd.congestion_free);

    let plan = TrafficPlan::from_cps(
        &job.order,
        &Cps::Shift,
        128 << 10,
        Progression::Asynchronous,
        8,
    );
    let sim = PacketSim::new(&topo, &job.routing, SimConfig::default(), &plan).run();
    assert!(
        sim.normalized_bw < 0.75,
        "random order should lose bandwidth, got {}",
        sim.normalized_bw
    );

    // The analytic prediction and the simulated loss agree in direction:
    // higher HSD, lower bandwidth.
    let good = Job::contention_free(&topo);
    let good_plan = TrafficPlan::from_cps(
        &good.order,
        &Cps::Shift,
        128 << 10,
        Progression::Asynchronous,
        8,
    );
    let good_sim = PacketSim::new(&topo, &good.routing, SimConfig::default(), &good_plan).run();
    assert!(good_sim.normalized_bw > sim.normalized_bw + 0.15);
}

#[test]
fn degraded_fabric_is_measured_not_assumed() {
    // Failure injection: remove a spine's worth of capacity by routing over
    // a *non*-CBB-preserving tree (2:1 oversubscribed). D-Mod-K still
    // routes everything, but Theorem 1 no longer applies — HSD must now
    // reflect the oversubscription honestly.
    let spec = io::parse_spec("PGFT(2; 8,16; 1,4; 1,1)").expect("valid spec");
    assert!(
        require_rlft(&spec).is_err(),
        "2:1 oversubscription is not an RLFT"
    );
    let topo = Topology::build(spec);
    let job = Job::contention_free(&topo);
    job.routing
        .validate(&topo, usize::MAX)
        .expect("still fully routable");
    let hsd = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions { max_stages: 32 },
    )
    .unwrap();
    // 8 hosts share 4 up-links: exactly 2 flows per up-link in cross-leaf
    // stages.
    assert_eq!(hsd.worst, 2, "oversubscription must show up as HSD");
}
