//! Cross-validation: the analytic completion-time model against the fluid
//! simulator — HSD is not just a diagnostic, it predicts wall-clock.

use ftree::analysis::{predicted_stage_time_ps, stage_hsd, DetailedReport, LinkLoads};
use ftree::collectives::{Cps, PermutationSequence};
use ftree::core::{NodeOrder, RoutingAlgo};
use ftree::sim::{run_fluid, Progression, SimConfig, TrafficPlan};
use ftree::topology::rlft::catalog;
use ftree::topology::Topology;

#[test]
fn analytic_model_predicts_fluid_makespan() {
    let topo = Topology::build(catalog::nodes_324());
    let rt = RoutingAlgo::DModK.route(&topo);
    let cfg = SimConfig::default();
    let bytes = 1u64 << 20;
    let n = topo.num_hosts() as u32;

    for order in [
        NodeOrder::topology(&topo),
        NodeOrder::random(&topo, 2),
        NodeOrder::adversarial_ring(&topo),
    ] {
        let flows = order.port_flows(&Cps::Ring.stage(n, 0));
        let hsd = stage_hsd(&topo, &rt, &flows).unwrap();
        let predicted = predicted_stage_time_ps(bytes, hsd.max, cfg.host_bw.mbps, cfg.link_bw.mbps);

        let plan = TrafficPlan::uniform(vec![flows], bytes, Progression::Synchronized);
        let sim = run_fluid(&topo, &rt, cfg, &plan);
        let ratio = sim.makespan as f64 / predicted as f64;
        assert!(
            (0.9..=1.1).contains(&ratio),
            "{}: predicted {predicted} ps, fluid {} ps (ratio {ratio:.3})",
            order.label,
            sim.makespan
        );
    }
}

#[test]
fn detailed_report_localizes_the_adversarial_hotspot() {
    let topo = Topology::build(catalog::nodes_324());
    let rt = RoutingAlgo::DModK.route(&topo);
    let order = NodeOrder::adversarial_ring(&topo);
    let n = topo.num_hosts() as u32;
    let flows = order.port_flows(&Cps::Ring.stage(n, 0));
    let loads = LinkLoads::compute(&topo, &rt, &flows).unwrap();
    let report = DetailedReport::new(&topo, &loads, 5);

    // The adversarial funnel lives on the leaf up-links (level 2 on a
    // 2-level tree), not on host links or down-links.
    assert!(report.up_max_per_level[2] >= 15);
    assert_eq!(report.up_max_per_level[1], 1, "host links carry one flow");
    assert!(report.down_max_per_level[2] <= 2);
    for w in &report.worst {
        assert!(w.up);
        assert_eq!(w.level, 2);
        assert!(w.description.starts_with("S1["), "{}", w.description);
    }
    // Histogram sanity: total channels accounted for.
    assert_eq!(report.histogram.iter().sum::<usize>(), topo.num_channels());
}
