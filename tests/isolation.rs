//! Multi-job isolation: concurrently running jobs, each contention-free on
//! its own, never contend with each other under the whole-leaf allocation
//! policy — even when their collectives progress independently.

use ftree::analysis::stage_hsd;
use ftree::collectives::{Cps, PermutationSequence, PortSpace};
use ftree::core::{Allocator, NodeOrder, RoutingAlgo};
use ftree::topology::rlft::catalog;
use ftree::topology::Topology;

/// Merge the flows of several jobs, each at its own (independently chosen)
/// stage of its own collective, and assert global HSD <= 1.
fn assert_jobs_isolated(topo: &Topology, job_ports: &[Vec<u32>], stage_picks: &[usize]) {
    let rt = RoutingAlgo::DModK.route(topo);
    let n_total = topo.num_hosts() as u32;
    let mut merged: Vec<(u32, u32)> = Vec::new();
    for (ports, &pick) in job_ports.iter().zip(stage_picks) {
        let order = NodeOrder::topology_subset(ports.clone());
        let seq = PortSpace::new(Cps::Shift, n_total, ports.clone());
        let n = seq.num_ranks();
        if seq.num_stages(n) == 0 {
            continue;
        }
        let stage = seq.stage(n, pick % seq.num_stages(n));
        merged.extend(order.port_flows(&stage));
    }
    let hsd = stage_hsd(topo, &rt, &merged).unwrap();
    assert!(
        hsd.max <= 1,
        "jobs interfere: HSD {} over {} merged flows",
        hsd.max,
        merged.len()
    );
}

#[test]
fn two_spanning_jobs_never_interfere() {
    let topo = Topology::build(catalog::nodes_128());
    let mut alloc = Allocator::new(&topo);
    let a = alloc.allocate(48).unwrap();
    let b = alloc.allocate(40).unwrap();
    // Every combination of independently-progressing stages.
    for sa in [0usize, 3, 17, 40] {
        for sb in [1usize, 9, 23] {
            assert_jobs_isolated(&topo, &[a.ports.clone(), b.ports.clone()], &[sa, sb]);
        }
    }
}

#[test]
fn many_jobs_fill_the_machine_without_interference() {
    let topo = Topology::build(catalog::nodes_324());
    let mut alloc = Allocator::new(&topo);
    let jobs: Vec<Vec<u32>> = [90usize, 54, 36, 72, 36]
        .iter()
        .map(|&r| alloc.allocate(r).unwrap().ports)
        .collect();
    let picks: Vec<usize> = vec![5, 11, 2, 29, 7];
    assert_jobs_isolated(&topo, &jobs, &picks);
}

#[test]
fn sub_leaf_jobs_coexist_with_spanning_jobs() {
    let topo = Topology::build(catalog::nodes_128());
    let mut alloc = Allocator::new(&topo);
    let big = alloc.allocate(96).unwrap(); // 12 leaves
    let tiny1 = alloc.allocate(3).unwrap();
    let tiny2 = alloc.allocate(5).unwrap();
    assert!(!tiny1.spans_leaves && !tiny2.spans_leaves);
    for s in [0usize, 7, 31] {
        assert_jobs_isolated(
            &topo,
            &[big.ports.clone(), tiny1.ports.clone(), tiny2.ports.clone()],
            &[s, s + 1, s + 2],
        );
    }
}

#[test]
fn isolation_holds_dynamically_in_the_packet_simulator() {
    // The HSD checks above are static; here the packet simulator confirms
    // the dynamic claim: running two jobs together costs neither of them
    // any wall-clock versus running alone.
    use ftree::core::RoutingAlgo;
    use ftree::sim::{PacketSim, Progression, SimConfig, TrafficPlan};

    let topo = Topology::build(catalog::nodes_128());
    let rt = RoutingAlgo::DModK.route(&topo);
    let mut alloc = Allocator::new(&topo);
    let a = alloc.allocate(64).unwrap();
    let b = alloc.allocate(64).unwrap();

    let n_total = topo.num_hosts() as u32;
    let job_stages = |ports: &Vec<u32>| -> Vec<Vec<(u32, u32)>> {
        let order = NodeOrder::topology_subset(ports.clone());
        let seq = PortSpace::new(Cps::Shift, n_total, ports.clone());
        let n = seq.num_ranks();
        (0..8)
            .map(|s| order.port_flows(&seq.stage(n, (s * 13) % seq.num_stages(n))))
            .collect()
    };
    let sa = job_stages(&a.ports);
    let sb = job_stages(&b.ports);
    let bytes = 64 << 10;

    let solo_a = PacketSim::new(
        &topo,
        &rt,
        SimConfig::default(),
        &TrafficPlan::uniform(sa.clone(), bytes, Progression::Asynchronous),
    )
    .run();
    let solo_b = PacketSim::new(
        &topo,
        &rt,
        SimConfig::default(),
        &TrafficPlan::uniform(sb.clone(), bytes, Progression::Asynchronous),
    )
    .run();
    // Merge per stage index.
    let merged: Vec<Vec<(u32, u32)>> = sa
        .into_iter()
        .zip(sb)
        .map(|(mut x, y)| {
            x.extend(y);
            x
        })
        .collect();
    let both = PacketSim::new(
        &topo,
        &rt,
        SimConfig::default(),
        &TrafficPlan::uniform(merged, bytes, Progression::Asynchronous),
    )
    .run();
    let solo_worst = solo_a.makespan.max(solo_b.makespan);
    assert!(
        both.makespan <= solo_worst + solo_worst / 100,
        "co-running slowed a job: both {} vs solo {}",
        both.makespan,
        solo_worst
    );
}

#[test]
fn jobs_survive_cable_failures_with_bounded_interference() {
    // Operations reality: jobs are running when a cable dies. Fault-aware
    // rerouting must keep every job connected; the detour may double load
    // on one sibling cable (worst HSD 2) but never couples jobs beyond
    // that.
    use ftree::core::{DModK, Router};
    use ftree::topology::LinkFailures;

    let topo = Topology::build(catalog::nodes_324());
    let mut alloc = Allocator::new(&topo);
    let a = alloc.allocate(108).unwrap();
    let b = alloc.allocate(90).unwrap();

    let mut failures = LinkFailures::none(&topo);
    let leaf0 = topo.node_at(1, 0).unwrap(); // leaf inside job a
    failures.fail_up_port(&topo, leaf0, 4).unwrap();
    let rt = DModK.route(&topo, &failures).unwrap();
    rt.validate(&topo, 10_000).expect("fabric still connected");

    let n_total = topo.num_hosts() as u32;
    let mut merged: Vec<(u32, u32)> = Vec::new();
    for (ports, pick) in [(&a.ports, 7usize), (&b.ports, 19)] {
        let order = NodeOrder::topology_subset(ports.clone());
        let seq = PortSpace::new(Cps::Shift, n_total, ports.clone());
        let n = seq.num_ranks();
        merged.extend(order.port_flows(&seq.stage(n, pick % seq.num_stages(n))));
    }
    let hsd = ftree::analysis::stage_hsd(&topo, &rt, &merged).unwrap();
    assert!(
        hsd.max <= 2,
        "one failed cable may double one link's load, no more: {}",
        hsd.max
    );
    // And job b (no failed cables under its leaves) is individually clean.
    let order_b = NodeOrder::topology_subset(b.ports.clone());
    let seq_b = PortSpace::new(Cps::Shift, n_total, b.ports.clone());
    let nb = seq_b.num_ranks();
    let flows_b = order_b.port_flows(&seq_b.stage(nb, 19 % seq_b.num_stages(nb)));
    let hsd_b = ftree::analysis::stage_hsd(&topo, &rt, &flows_b).unwrap();
    assert_eq!(hsd_b.max, 1, "unaffected job stays contention-free");
}

#[test]
fn allocation_churn_preserves_isolation() {
    // Allocate, release, reallocate — fragmentation across leaf sets must
    // not break isolation (PortSpace handles scattered leaves).
    let topo = Topology::build(catalog::nodes_128());
    let mut alloc = Allocator::new(&topo);
    let a = alloc.allocate(32).unwrap();
    let b = alloc.allocate(32).unwrap();
    let _c = alloc.allocate(32).unwrap();
    alloc.release(b.id).unwrap();
    // d re-uses b's freed leaves (and may interleave with c's).
    let d = alloc.allocate(48).unwrap();
    let e = alloc.allocate(16).unwrap();
    for picks in [[0usize, 5, 9], [12, 1, 44]] {
        assert_jobs_isolated(
            &topo,
            &[a.ports.clone(), d.ports.clone(), e.ports.clone()],
            &picks,
        );
    }
}
