//! Heavy opt-in validations (minutes of CPU). Run with:
//!
//! ```sh
//! cargo test --release --test heavy -- --ignored
//! ```

use ftree::analysis::{sequence_hsd, SequenceOptions};
use ftree::collectives::{Cps, TopoAwareRd};
use ftree::core::Job;
use ftree::sim::{PacketSim, Progression, SimConfig, TrafficPlan};
use ftree::topology::rlft::catalog;
use ftree::topology::Topology;

/// Theorem 1 on the maximal 3-level 36-port tree (11664 hosts) — the
/// largest topology the paper names (Sec. V.A).
#[test]
#[ignore = "routes an 11664-host fabric; ~1 min"]
fn theorem1_on_the_maximal_11664_node_tree() {
    let topo = Topology::build(catalog::rlft3_full(18));
    assert_eq!(topo.num_hosts(), 11664);
    let job = Job::contention_free(&topo);
    let r = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions { max_stages: 12 },
    )
    .unwrap();
    assert!(r.congestion_free, "worst = {}", r.worst);
    let rd = TopoAwareRd::new(topo.spec().ms().to_vec());
    let r2 = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &rd,
        SequenceOptions::default(),
    )
    .unwrap();
    assert!(r2.congestion_free, "worst = {}", r2.worst);
}

/// The full (non-sampled) Shift sequence on the 324-node tree, every one
/// of its 323 stages, at the analytic level.
#[test]
#[ignore = "323 full stages; ~10 s"]
fn full_shift_sequence_all_stages_324() {
    let topo = Topology::build(catalog::nodes_324());
    let job = Job::contention_free(&topo);
    let r = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions::default(),
    )
    .unwrap();
    assert_eq!(r.per_stage_max.len(), 323);
    assert!(r.congestion_free);
}

/// Packet-level soak: 1944 hosts, sampled Shift, 64 KiB messages — the
/// `--full` Figure 2 configuration as a regression test.
#[test]
#[ignore = "1944-host packet simulation; ~1 min"]
fn packet_sim_soak_1944() {
    let topo = Topology::build(catalog::nodes_1944());
    let job = Job::contention_free(&topo);
    let plan = TrafficPlan::from_cps(
        &job.order,
        &Cps::Shift,
        64 << 10,
        Progression::Asynchronous,
        8,
    );
    let r = PacketSim::new(&topo, &job.routing, SimConfig::default(), &plan).run();
    assert_eq!(r.messages_delivered as usize, plan.num_messages());
    assert!(r.normalized_bw > 0.95, "{}", r.normalized_bw);
}
