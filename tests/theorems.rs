//! Cross-crate integration tests for the paper's three theorems:
//! D-Mod-K + topology order keeps unidirectional CPS (Theorems 1 & 2) and
//! the topology-aware bidirectional sequence (Theorem 3) congestion-free on
//! real-life fat-trees — fully and partially populated.

use ftree::analysis::{sequence_hsd, SequenceOptions};
use ftree::collectives::{Cps, PermutationSequence, TopoAwareRd};
use ftree::core::Job;
use ftree::topology::rlft::catalog;
use ftree::topology::Topology;

fn assert_congestion_free(
    topo: &Topology,
    seq: &(dyn PermutationSequence + Sync),
    opts: SequenceOptions,
    what: &str,
) {
    let job = Job::contention_free(topo);
    let r = sequence_hsd(topo, &job.routing, &job.order, seq, opts).unwrap();
    assert!(
        r.congestion_free,
        "{what} on {}: worst HSD = {}",
        topo.spec(),
        r.worst
    );
}

#[test]
fn theorem1_shift_on_2level_trees() {
    for spec in [
        catalog::nodes_128(),
        catalog::nodes_324(),
        catalog::nodes_648(),
    ] {
        let topo = Topology::build(spec);
        assert_congestion_free(
            &topo,
            &Cps::Shift,
            SequenceOptions { max_stages: 64 },
            "Shift",
        );
    }
}

#[test]
fn theorem1_shift_on_3level_trees() {
    for spec in [catalog::nodes_1728(), catalog::nodes_1944()] {
        let topo = Topology::build(spec);
        assert_congestion_free(
            &topo,
            &Cps::Shift,
            SequenceOptions { max_stages: 40 },
            "Shift",
        );
    }
}

#[test]
fn unidirectional_cps_are_congestion_free() {
    // Shift is the superset, but check the others directly too.
    let topo = Topology::build(catalog::nodes_324());
    for cps in [
        Cps::Ring,
        Cps::Dissemination,
        Cps::Tournament,
        Cps::Binomial,
    ] {
        assert_congestion_free(&topo, &cps, SequenceOptions::default(), cps.label());
    }
}

#[test]
fn theorem3_topology_aware_rd_is_congestion_free() {
    for spec in [
        catalog::nodes_128(),
        catalog::nodes_324(),
        catalog::nodes_1944(),
    ] {
        let topo = Topology::build(spec);
        let seq = TopoAwareRd::new(topo.spec().ms().to_vec());
        assert_congestion_free(&topo, &seq, SequenceOptions::default(), "TopoAwareRD");
    }
}

#[test]
fn plain_recursive_doubling_congests_even_in_topology_order() {
    // The motivation for Sec. VI: naive XOR exchange is NOT contention-free
    // on an RLFT even with the good ordering and routing.
    let topo = Topology::build(catalog::nodes_324());
    let job = Job::contention_free(&topo);
    let r = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::RecursiveDoubling,
        SequenceOptions::default(),
    )
    .unwrap();
    assert!(
        !r.congestion_free,
        "expected contention from naive recursive doubling, got HSD = {}",
        r.worst
    );
}

#[test]
fn partial_population_with_random_exclusions_stays_free_in_port_space() {
    // Table 3's "Cont. -X" cases: randomly excluded nodes fall silent, the
    // sequence stays defined over port positions (PortSpace). Every stage
    // is then a subset of a complete-tree Shift stage => HSD = 1.
    use ftree::collectives::PortSpace;
    let topo = Topology::build(catalog::nodes_324());
    let n_total = topo.num_hosts() as u32;
    for (seed, excl) in [(1u64, 1usize), (2, 18), (3, 37)] {
        // Deterministic pseudo-random exclusion without external RNG state:
        // exclude ports (seed * 97 + k * 131) % 324.
        let mut excluded = std::collections::HashSet::new();
        let mut k = 0u64;
        while excluded.len() < excl {
            excluded.insert(((seed * 97 + k * 131) % n_total as u64) as u32);
            k += 1;
        }
        let ports: Vec<u32> = (0..n_total).filter(|p| !excluded.contains(p)).collect();
        let seq = PortSpace::new(Cps::Shift, n_total, ports.clone());
        let job = Job::contention_free_partial(&topo, ports);
        let r = ftree::analysis::sequence_hsd(
            &topo,
            &job.routing,
            &job.order,
            &seq,
            SequenceOptions { max_stages: 64 },
        )
        .unwrap();
        assert!(r.congestion_free, "excl={excl}: worst = {}", r.worst);
    }
}

#[test]
fn partial_uniform_shape_topology_aware_rd_is_free() {
    // Sec. VI's partial-tree remark, generalized: a job occupying a
    // *uniformly shaped* scattered subset (here 6 ports on each of 8
    // scattered leaves of the 324-node tree) runs the occupancy-derived
    // topology-aware sequence contention-free.
    use ftree::collectives::topo_aware_subset;
    let topo = Topology::build(catalog::nodes_324());
    let mut ports = Vec::new();
    for leaf in [0u32, 2, 5, 6, 9, 12, 15, 17] {
        for off in [1u32, 3, 4, 8, 11, 16] {
            ports.push(leaf * 18 + off);
        }
    }
    let seq = topo_aware_subset(topo.spec().ms(), &ports).expect("uniform shape");
    assert_eq!(seq.num_ranks(), 48);
    let job = Job::contention_free_partial(&topo, ports);
    let r = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &seq,
        SequenceOptions::default(),
    )
    .unwrap();
    assert!(r.congestion_free, "worst = {}", r.worst);
}

#[test]
fn naive_rank_compaction_breaks_partial_population() {
    // The ablation motivating PortSpace: renumbering ranks densely and
    // running the ordinary Shift CPS produces contention.
    let topo = Topology::build(catalog::nodes_324());
    let mut excluded = std::collections::HashSet::new();
    let mut k = 0u64;
    while excluded.len() < 18 {
        excluded.insert(((43 + k * 131) % 324) as u32);
        k += 1;
    }
    let ports: Vec<u32> = (0..324u32).filter(|p| !excluded.contains(p)).collect();
    let job = Job::contention_free_partial(&topo, ports);
    let r = ftree::analysis::sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions { max_stages: 64 },
    )
    .unwrap();
    assert!(
        !r.congestion_free,
        "expected contention, worst = {}",
        r.worst
    );
}

#[test]
fn partial_population_keeps_shift_congestion_free_when_aligned() {
    // Sec. V.A: any aligned sub-allocation in multiples of prod(w) stays
    // congestion-free.
    let topo = Topology::build(catalog::nodes_648());
    let unit = ftree::core::suballocation_unit(&topo); // 18 for this tree
    let ports = ftree::core::aligned_suballocation(&topo, 18 * unit);
    let job = Job::contention_free_partial(&topo, ports);
    let r = sequence_hsd(
        &topo,
        &job.routing,
        &job.order,
        &Cps::Shift,
        SequenceOptions { max_stages: 64 },
    )
    .unwrap();
    assert!(r.congestion_free, "worst = {}", r.worst);
}
